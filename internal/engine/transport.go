// Transport boundary: the superstep compute/exchange seam the distributed
// runtime plugs into. The engine remains the single coordinator ("master" in
// BLADYG terms): it owns the authoritative vertex values, inboxes,
// aggregators, observers, and checkpoints, and each superstep it hands every
// partition's work — active vertices, their current values, their inbox —
// to a Transport, which executes the vertex programs either on an in-process
// executor or on a remote worker process and returns the partition's
// outboxes, records, and aggregator contributions. Because the barrier-side
// delivery, combining, observation, and checkpointing code is exactly the
// code the in-process path runs, a transport-backed run is bit-identical to
// a local one by construction; only *where* Compute executes changes.
//
// Robustness contract: a Transport failure (connection loss, exceeded
// message deadlines, an unreachable peer) is reported as an error wrapping
// ErrTransport — distinct from a remote *compute* crash, which travels back
// as ExecResult.Crash and is reconstructed into the same CrashError a local
// run would produce. The recovery ladder, in order: the transport's own
// per-message retransmit budget; partition failover inside the transport's
// worker pool (the TCP leg reroutes the same ExecRequest to a surviving
// worker — any worker computes it bit-identically and capture is fully
// preserved, so a worker death costs nothing but latency while survivors
// remain); the engine's supervised partition retry; and finally, when the
// transport reports that no workers remain, local re-execution — the engine
// pins the partition local from the superstep barrier (the master holds the
// program and graph, so the analytic completes bit-identically) while
// shedding that partition's provenance capture via the degraded-mode
// machinery, exactly as repeated capture failures do.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ariadne/internal/fault"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/value"
)

// ErrTransport is the base error of transport-layer failures (dial errors,
// send/recv deadline expiries, heartbeat-declared dead peers). It classifies
// a failed partition attempt as "the network, not the program": supervision
// retries it, and past MaxRetries the engine falls back to local execution
// instead of aborting the run.
var ErrTransport = errors.New("transport failure")

// ErrStateMiss reports that a worker could not execute a delta-mode request
// because it holds no resident state for the partition at that superstep
// (fresh worker, failover target, or a worker that lost a delivery round).
// It deliberately does NOT wrap ErrTransport: the worker is alive and
// answering — the master re-seeds it with a full-state request instead of
// failing the partition over or pinning it local.
var ErrStateMiss = errors.New("worker resident-state miss")

// ExecMode selects how much state an ExecRequest carries (wire v3, PR 9).
//
// The zero value is ModeClassic — the stateless exchange of PRs 6–8, where
// every request ships the frontier's values, previous-active marks, and
// inbox, and every result returns the new values and the full outbox. Direct
// Executor/Transport users (tests, tools) that construct bare requests get
// exactly the legacy semantics.
//
// Under a StatefulTransport the engine switches to ModeDelta: workers keep
// partition state resident across supersteps, requests carry only the active
// vertex IDs and control metadata, and results return accounting, records,
// and the master-resident outbox columns — the values and the cross-worker
// messages never transit the master. ModeSeed is ModeDelta plus a full
// partition state install (stride values, last-active marks, inbox): the
// master sends it on a fresh run's first superstep miss, after failover, or
// after a replay re-hydration.
type ExecMode uint8

const (
	ModeClassic ExecMode = iota
	ModeDelta
	ModeSeed
)

// Transport executes one partition's superstep compute, either in-process
// or on a remote worker. Exec must be safe for concurrent calls (the engine
// issues one call per partition per superstep, from the per-partition worker
// goroutines) and must be synchronous: when ctx is cancelled or its deadline
// expires the call returns promptly so a supervised retry never races an
// abandoned attempt.
//
// Exec errors wrapping ErrTransport mean the request may not have reached
// the worker (or the reply was lost); the engine treats the request as
// idempotent — ExecRequest is a pure function of its payload — and re-sends
// it on retry. A remote vertex-program failure is NOT an Exec error: it
// comes back inside ExecResult.Crash so the master reproduces the exact
// CrashError (culprit vertex, superstep, panic/fault cause) a local run
// would have raised.
type Transport interface {
	Exec(ctx context.Context, req *ExecRequest) (*ExecResult, error)
	Close() error
}

// ExecRequest carries everything one partition needs to compute one
// superstep: the active vertices in ascending order with their current
// values and previous-active supersteps, the per-vertex inbox, and the
// merged aggregator values of the previous superstep. It is a pure value —
// executing it twice yields the same ExecResult — which is what licenses
// at-least-once delivery with receiver-side reply dedup in the TCP leg.
type ExecRequest struct {
	Superstep int
	Partition int
	// Observing asks for VertexRecords in the result (provenance capture or
	// online queries are attached master-side).
	Observing bool
	// Combine enables sender-side combining on the worker, using the
	// program's combiner (both sides are constructed from the same analytic,
	// so the association order matches the local path exactly).
	Combine bool
	// Active lists the vertices to compute, ascending. Values and PrevActive
	// align with it; Inbox[i] holds the messages for Active[i] (may be nil).
	Active     []VertexID
	Values     []value.Value
	PrevActive []int32
	Inbox      [][]IncomingMessage
	// Agg holds the merged aggregator values of the previous superstep
	// (Pregel read-your-previous-superstep semantics).
	Agg map[string]float64
	// Trace context (PR 7): when the master runs with span tracing enabled,
	// TraceID carries the run's trace ID and ParentSpan the span ID of this
	// partition's exchange, so the worker's decode/compute/encode child
	// spans land under the right parent in the merged timeline. Both zero
	// when tracing is off — the worker then records nothing.
	TraceID    uint64
	ParentSpan uint64
	// Worker-resident state (PR 9). Mode selects the exchange shape; the
	// remaining fields only matter when Mode != ModeClassic. For ModeDelta,
	// Values/PrevActive/Inbox stay nil — the worker already holds them.
	Mode ExecMode
	// Route maps each destination partition to the address of the worker
	// that owns it this superstep, so the executing worker sends outbox
	// fragments directly across the peer mesh; "" keeps the column in the
	// reply (the partition is master-resident). Filled by the transport at
	// send time from its current assignment; nil under ModeClassic.
	Route []string
	// LocalParts flags master-resident (pinned-local) partitions; the
	// transport derives Route from it. Master-side only, not serialized.
	LocalParts []bool
	// Seed payload (ModeSeed): the partition's full state in stride order
	// (vertex p, p+nParts, ...). Inbox then aligns with Active as in classic
	// mode, carrying the messages of the seed superstep.
	AllValues []value.Value
	AllActive []int32
}

// OutMessage is one outbox entry on the wire: source and destination vertex
// plus the (possibly sender-combined) value, in emission order.
type OutMessage struct {
	Src, Dst VertexID
	Val      value.Value
}

// AggUpdate is one partition's partial aggregator contribution for the
// superstep, merged at the master barrier in the same per-partition order as
// local execution.
type AggUpdate struct {
	Name string
	Op   AggOp
	Val  float64
	N    int64
}

// RemoteCrash is a vertex-program failure serialized across the transport.
// The cause classification travels as flags so the master can rebuild an
// error chain that errors.Is-matches the local sentinels (ErrComputePanic,
// fault.ErrInjected, context deadline/cancel) and supervision classifies the
// retry exactly as it would a local crash.
type RemoteCrash struct {
	Vertex    VertexID
	Superstep int
	Message   string
	Panic     bool
	Injected  bool
	Deadline  bool
	Canceled  bool
}

// Err rebuilds the crash cause with the sentinel chain restored.
func (rc *RemoteCrash) Err() error {
	base := errors.New(rc.Message)
	var err error = base
	if rc.Canceled {
		err = fmt.Errorf("%w: %w", base, context.Canceled)
	} else if rc.Deadline {
		err = fmt.Errorf("%w: %w", base, context.DeadlineExceeded)
	}
	if rc.Injected {
		err = fmt.Errorf("%w: %w", fault.ErrInjected, err)
	}
	if rc.Panic {
		err = fmt.Errorf("%w: %w", ErrComputePanic, err)
	}
	return err
}

// ExecResult is one partition's completed superstep: new values for the
// computed vertices, the per-destination-partition outboxes in canonical
// emission order, the observer records (when requested), message accounting,
// and the partition's aggregator partials. Crash is set instead when a
// vertex failed; the other fields are then meaningless.
type ExecResult struct {
	Partition int
	Crash     *RemoteCrash

	Computed  []VertexID
	NewValues []value.Value // aligned with Computed
	Outbox    [][]OutMessage
	Records   []VertexRecord

	Sent           int64
	CombinedSender int64
	Agg            []AggUpdate

	// Spans carries the worker's completed child spans back to the master,
	// piggybacked on the result frame (empty unless the request carried
	// trace context). The master merges them via Metrics.AddRemoteSpans.
	Spans []obs.Span

	// StateMiss reports a delta-mode request the worker could not serve for
	// lack of resident state; the transport surfaces it as ErrStateMiss and
	// the other fields are meaningless.
	StateMiss bool
	// DstCounts gives the per-destination-partition outbox sizes (after
	// sender-side combining) for resident-mode results, where the routed
	// columns themselves are not in Outbox. The master uses them for message
	// accounting and to tell workers how many fragments to expect at the
	// delivery barrier.
	DstCounts []int64
}

// DeliverRequest is the delivery-barrier round of a resident-state run: for
// each listed partition, the owning worker folds the outbox fragments it
// received over the peer mesh (plus any master-supplied fragments from
// pinned-local partitions) into the partition's next inbox, mirroring the
// master barrier's association order exactly. With CollectOnly set, no
// delivery happens — the worker just returns the partition's resident state
// entering Superstep (for checkpoints and the final Values() read).
type DeliverRequest struct {
	Superstep   int
	CollectOnly bool
	// Combine enables barrier-side combining, matching the master's
	// effective combiner (nil when any observer needs raw messages).
	Combine bool
	// Parts lists the partitions to deliver/collect; Expected[i][sp] is the
	// fragment count partition Parts[i] must have received from source
	// partition sp, and MasterFrags[i][sp] carries source partition sp's
	// messages inline when sp is master-resident.
	Parts       []int
	Expected    [][]int64
	MasterFrags [][][]OutMessage
	TraceID     uint64
	ParentSpan  uint64
}

// DeliverPart is one partition's delivery-barrier (or collect) outcome.
// OK=false means the worker could not serve the partition — it didn't
// execute the superstep or fragments are missing — and the master falls
// back to checkpoint + replay re-hydration.
type DeliverPart struct {
	Partition int
	OK        bool
	// Delivery outcome: inbox entries created, messages folded away by the
	// combiner, and the sorted next-active vertex set.
	Delivered int64
	Combined  int64
	Dsts      []VertexID
	// Collect payload: the partition's values in stride order and its inbox
	// sorted by destination vertex.
	Values []value.Value
	Inbox  []InboxChunk
}

// InboxChunk is one vertex's inbox on the wire (collect payload), in the
// exact fold order the delivery barrier produced.
type InboxChunk struct {
	Dst  VertexID
	Msgs []IncomingMessage
}

// DeliverResult carries the per-partition outcomes, aligned with the
// request's Parts.
type DeliverResult struct {
	Parts []DeliverPart
}

// StatefulTransport is a Transport whose workers keep partition state
// resident across supersteps. Resident reports whether the resident-state
// protocol is active (a transport can implement the interface but opt out,
// e.g. the TCP leg under ForceFullState); when true the engine sends delta
// requests and drives the delivery barrier through Deliver, and falls back
// to checkpoint + replay re-hydration when a worker (and the state it held)
// is lost.
type StatefulTransport interface {
	Transport
	Resident() bool
	Deliver(ctx context.Context, req *DeliverRequest) (*DeliverResult, error)
}

// Executor runs partition supersteps against request-supplied state — the
// worker-process side of the transport. It wraps a private Engine over the
// same graph and program the master holds; each Exec installs the request's
// values, inbox, and aggregator snapshot, runs the partition exactly as the
// master's in-process path would, and extracts the result. Exec is
// serialized by an internal mutex (a worker serves one master connection,
// but its partitions' requests may arrive back to back).
type Executor struct {
	mu sync.Mutex
	e  *Engine
	// res tracks each partition's worker-resident state across supersteps
	// (PR 9): which superstep the resident values/inbox can execute, which
	// superstep has executed but not yet passed the delivery barrier, and
	// the memoized last barrier outcome for retransmit idempotence.
	res []residentPart
}

// residentPart is one partition's resident-state bookkeeping on a worker.
type residentPart struct {
	// readySS is the superstep the resident state can execute (a fresh
	// executor is authoritative for superstep 0 by construction: initial
	// values, empty inboxes, last-active -1 — identical to a fresh master).
	// -1 after a classic-mode request invalidates residency.
	readySS int
	// executedSS is the superstep that has executed but not yet been
	// assembled at the delivery barrier; -1 when none. ids and snap hold the
	// executed active set and its pre-exec values so a duplicate exec (lost
	// reply) or a crash rolls back to an idempotent state.
	executedSS int
	ids        []VertexID
	snap       []value.Value
	// deliverSS/deliverRes memoize the last Assemble outcome so a
	// retransmitted delivery round (reply lost, new connection) replays the
	// identical result instead of double-folding.
	deliverSS  int
	deliverRes *DeliverPart
}

// NewExecutor creates a worker-side executor for prog over g. cfg supplies
// Partitions (which must match the master's) and the program's Combiner;
// other fields are ignored — observers, checkpointing, supervision, and
// metrics live on the master.
func NewExecutor(g *graph.Graph, prog Program, cfg Config) (*Executor, error) {
	e, err := New(g, prog, Config{
		Partitions: cfg.Partitions,
		Combiner:   cfg.Combiner,
		Fault:      cfg.Fault,
	})
	if err != nil {
		return nil, err
	}
	x := &Executor{e: e, res: make([]residentPart, e.nParts)}
	for p := range x.res {
		x.res[p] = residentPart{readySS: 0, executedSS: -1, deliverSS: -1}
	}
	return x, nil
}

// Fault exposes the executor's fault injector so the transport layer can
// guard the peer-mesh send/recv sites on the worker.
func (x *Executor) Fault() *fault.Injector { return x.e.cfg.Fault }

// rollback undoes an executed-but-unassembled superstep: the pre-exec
// values of the executed active set are restored, making a re-execution (or
// a collect of the entering-readySS state) exact.
func (x *Executor) rollback(rp *residentPart) {
	if rp.executedSS < 0 {
		return
	}
	for i, v := range rp.ids {
		x.e.values[v] = rp.snap[i]
	}
	rp.executedSS = -1
}

// Partitions returns the executor's partition count (handshake check).
func (x *Executor) Partitions() int { return x.e.nParts }

// Graph returns the executor's graph (handshake fingerprint).
func (x *Executor) Graph() *graph.Graph { return x.e.g }

// Exec computes one partition superstep from the request's state. The
// context bounds the attempt like a supervision deadline does locally:
// cancellation aborts between vertices and surfaces as a RemoteCrash with
// the deadline/cancel cause preserved.
func (x *Executor) Exec(ctx context.Context, req *ExecRequest) *ExecResult {
	x.mu.Lock()
	defer x.mu.Unlock()
	e := x.e
	p := req.Partition
	rp := &x.res[p]
	switch req.Mode {
	case ModeDelta:
		if rp.executedSS == req.Superstep {
			// Duplicate execution (the reply was lost): roll back to the
			// pre-exec snapshot so the re-run is idempotent.
			x.rollback(rp)
		}
		if rp.readySS != req.Superstep {
			return &ExecResult{Partition: p, StateMiss: true}
		}
	case ModeSeed:
		// Full state install: any pending exec is obsolete, the seed
		// overwrites the whole partition (values, last-active, inbox).
		rp.executedSS = -1
		rp.deliverSS, rp.deliverRes = -1, nil
		i := 0
		for v := p; v < e.g.NumVertices(); v += e.nParts {
			e.values[VertexID(v)] = req.AllValues[i]
			e.lastActive[VertexID(v)] = req.AllActive[i]
			i++
		}
		inbox := make(map[VertexID][]IncomingMessage, len(req.Active))
		for i, v := range req.Active {
			if len(req.Inbox[i]) > 0 {
				inbox[v] = req.Inbox[i]
			}
		}
		e.inboxes[p] = inbox
		rp.readySS = req.Superstep
	default: // ModeClassic — the stateless exchange, exactly as before PR 9
		rp.readySS, rp.executedSS = -1, -1
		rp.deliverSS, rp.deliverRes = -1, nil
		inbox := make(map[VertexID][]IncomingMessage, len(req.Active))
		for i, v := range req.Active {
			e.values[v] = req.Values[i]
			e.lastActive[v] = req.PrevActive[i]
			if len(req.Inbox[i]) > 0 {
				inbox[v] = req.Inbox[i]
			}
		}
		e.inboxes[p] = inbox
	}
	e.agg.setCurrent(req.Agg)
	e.agg.resetPartition(p)
	if req.Combine {
		e.sendComb = e.cfg.Combiner
	} else {
		e.sendComb = nil
	}
	e.runCtx = context.Background() // any ctx expiry is attempt-scoped here

	resident := req.Mode != ModeClassic
	if resident {
		rp.ids = append(rp.ids[:0], req.Active...)
		rp.snap = rp.snap[:0]
		for _, v := range req.Active {
			rp.snap = append(rp.snap, e.values[v])
		}
	}

	// Reuse the engine's per-partition result buffer: the worker engine
	// never runs its own barrier, so e.results[p] is idle here, and
	// everything Exec exports below is copied out of it before return.
	pr := &e.results[p]
	e.runPartition(ctx, p, req.Superstep, req.Observing, req.Active, pr)

	res := &ExecResult{Partition: p, Sent: pr.sent, CombinedSender: pr.combinedSender}
	if c := pr.crash; c != nil {
		if resident {
			// Restore the pre-exec values so the resident state stays exact
			// for the supervised retry the master will issue.
			for i, v := range rp.ids {
				e.values[v] = rp.snap[i]
			}
		}
		res.Crash = &RemoteCrash{
			Vertex:    c.Vertex,
			Superstep: c.Superstep,
			Message:   c.Err.Error(),
			Panic:     errors.Is(c.Err, ErrComputePanic),
			Injected:  errors.Is(c.Err, fault.ErrInjected),
			Deadline:  errors.Is(c.Err, context.DeadlineExceeded),
			Canceled:  errors.Is(c.Err, context.Canceled),
		}
		return res
	}
	if resident {
		rp.executedSS = req.Superstep
	} else {
		res.Computed = append([]VertexID(nil), pr.computed...)
		res.NewValues = make([]value.Value, len(pr.computed))
		for i, v := range pr.computed {
			res.NewValues[i] = e.values[v]
		}
	}
	res.Outbox = make([][]OutMessage, e.nParts)
	selfRouted := func(dp int) bool {
		return resident && dp < len(req.Route) && req.Route[dp] == "."
	}
	total := 0
	for dp, msgs := range pr.outbox {
		if !selfRouted(dp) {
			total += len(msgs)
		}
	}
	// Columns that leave this worker — reply columns the master folds or
	// relays, and mesh columns encoded outside x.mu — must not alias pr
	// (recycled next superstep, and a duplicate exec rewrites it while a
	// prior attempt's encode could still be reading); they share one flat
	// backing array, sliced per destination with full-cap bounds.
	// Self-routed columns (".") never cross an encode boundary: the frag
	// store holds only the slice header and every element access — the
	// Assemble fold, and any duplicate-exec rewrite — happens under x.mu
	// with deterministically identical contents, so they alias pr directly
	// and the delta path pays no copy at all.
	flat := make([]OutMessage, 0, total)
	for dp, msgs := range pr.outbox {
		if len(msgs) == 0 {
			continue
		}
		if selfRouted(dp) {
			res.Outbox[dp] = msgs
			continue
		}
		lo := len(flat)
		flat = append(flat, msgs...)
		res.Outbox[dp] = flat[lo:len(flat):len(flat)]
	}
	if req.Observing {
		res.Records = append([]VertexRecord(nil), pr.records...)
	}
	res.Agg = e.agg.partial(p)
	if resident {
		res.DstCounts = make([]int64, e.nParts)
		for dp := range res.Outbox {
			res.DstCounts[dp] = int64(len(res.Outbox[dp]))
		}
	}
	return res
}

// Assemble runs partition p's delivery barrier for superstep ss on the
// worker: the per-source-partition fragments fold in ascending source order
// — the master barrier's exact association tree — into a fresh inbox, which
// becomes the partition's resident state for superstep ss+1. frags[sp]
// supplies source partition sp's messages (from the peer mesh, the worker's
// own outbox, or the master's pinned partitions); expected[sp] is the
// master's count for validation. Returns OK=false without mutating state
// when the partition didn't execute ss here or fragments went missing with
// a dead peer — the master then re-hydrates from checkpoint + replay.
func (x *Executor) Assemble(ss, p int, combine bool, expected []int64, frags [][]OutMessage) *DeliverPart {
	x.mu.Lock()
	defer x.mu.Unlock()
	e := x.e
	rp := &x.res[p]
	if rp.deliverSS == ss && rp.deliverRes != nil {
		return rp.deliverRes // duplicate barrier round (lost reply)
	}
	dp := &DeliverPart{Partition: p}
	if rp.executedSS != ss || rp.readySS != ss {
		return dp
	}
	for sp := range expected {
		if int64(len(frags[sp])) != expected[sp] {
			return dp
		}
	}
	var comb func(a, b value.Value) value.Value
	if combine {
		comb = e.cfg.Combiner
	}
	// Recycle last superstep's inbox exactly like deliverColumn does on the
	// master: the compute phase fully consumed it (executedSS == ss was
	// checked above), so both the map and its message slices return to the
	// pool. The worker engine never runs its own barrier, so spareInboxes
	// and msgFree are otherwise idle here.
	old := e.inboxes[p]
	free := e.msgFree[p]
	for _, s := range old {
		if cap(s) > 0 {
			free = append(free, s[:0])
		}
	}
	clear(old)
	next := e.spareInboxes[p]
	if next == nil {
		next = make(map[VertexID][]IncomingMessage)
	}
	for sp := range frags {
		for _, om := range frags[sp] {
			if comb != nil {
				if ex := next[om.Dst]; len(ex) > 0 {
					ex[0].Val = comb(ex[0].Val, om.Val)
					dp.Combined++
					continue
				}
			}
			s := next[om.Dst]
			if s == nil && len(free) > 0 {
				s = free[len(free)-1]
				free = free[:len(free)-1]
			}
			next[om.Dst] = append(s, IncomingMessage{Src: om.Src, Val: om.Val})
			dp.Delivered++
		}
	}
	e.inboxes[p] = next
	e.spareInboxes[p] = old
	e.msgFree[p] = free
	for _, v := range rp.ids {
		e.lastActive[v] = int32(ss)
	}
	rp.executedSS = -1
	rp.readySS = ss + 1
	dp.OK = true
	dp.Dsts = make([]VertexID, 0, len(next))
	for v := range next {
		dp.Dsts = append(dp.Dsts, v)
	}
	sort.Slice(dp.Dsts, func(i, j int) bool { return dp.Dsts[i] < dp.Dsts[j] })
	rp.deliverSS, rp.deliverRes = ss, dp
	return dp
}

// Collect returns partition p's resident state entering superstep target —
// stride-order values plus the inbox — for master-side checkpoints and the
// final Values() read. An executed-but-unassembled superstep is rolled back
// first so the snapshot is exactly "entering readySS". OK=false when the
// resident state is at a different superstep (the master then re-hydrates
// by replay). Read-only apart from the rollback, so retransmits are safe.
func (x *Executor) Collect(target, p int) *DeliverPart {
	x.mu.Lock()
	defer x.mu.Unlock()
	e := x.e
	rp := &x.res[p]
	if rp.executedSS >= 0 && rp.executedSS == rp.readySS {
		x.rollback(rp)
	}
	dp := &DeliverPart{Partition: p}
	if rp.readySS != target {
		return dp
	}
	dp.OK = true
	for v := p; v < e.g.NumVertices(); v += e.nParts {
		dp.Values = append(dp.Values, e.values[VertexID(v)])
	}
	inbox := e.inboxes[p]
	dp.Inbox = make([]InboxChunk, 0, len(inbox))
	for v, msgs := range inbox {
		dp.Inbox = append(dp.Inbox, InboxChunk{Dst: v, Msgs: msgs})
	}
	sort.Slice(dp.Inbox, func(i, j int) bool { return dp.Inbox[i].Dst < dp.Inbox[j].Dst })
	return dp
}

// buildExecRequest snapshots partition p's superstep input for the
// transport. Everything referenced is either copied or immutable for the
// duration of the call (inbox slices are only recycled at the next barrier,
// after every Exec of this superstep returned).
func (e *Engine) buildExecRequest(p, ss int, observing bool, ids []VertexID) *ExecRequest {
	req := &ExecRequest{
		Superstep: ss,
		Partition: p,
		Observing: observing,
		Combine:   e.sendComb != nil,
		Active:    ids,
		Agg:       e.agg.currentSnapshot(),
	}
	if e.resident {
		// Delta exchange: the worker holds the values and inbox resident;
		// only the active set and control metadata go over the wire. The
		// transport turns LocalParts into the peer-mesh Route.
		req.Mode = ModeDelta
		req.LocalParts = make([]bool, e.nParts)
		for dp := range req.LocalParts {
			req.LocalParts[dp] = e.localPinned[dp].Load()
		}
	} else {
		req.Values = make([]value.Value, len(ids))
		req.PrevActive = make([]int32, len(ids))
		req.Inbox = make([][]IncomingMessage, len(ids))
		inbox := e.inboxes[p]
		for i, v := range ids {
			req.Values[i] = e.values[v]
			req.PrevActive[i] = e.lastActive[v]
			req.Inbox[i] = inbox[v]
		}
	}
	if m := e.cfg.Metrics; m.SpansEnabled() {
		req.TraceID = m.SpanTraceID()
		req.ParentSpan = m.NewSpanID()
	}
	return req
}

// seedRequest upgrades a delta request to a full-state seed after a worker
// reported a resident-state miss: stride values, last-active marks, and the
// superstep's inbox. When the master's own arrays are authoritative for
// this superstep (run start, or right after a checkpoint collect) they are
// copied directly; otherwise the state is re-hydrated from the newest
// checkpoint plus a deterministic replay of the supersteps since.
func (e *Engine) seedRequest(req *ExecRequest) error {
	p, ss := req.Partition, req.Superstep
	n := e.g.NumVertices()
	req.AllActive = req.AllActive[:0]
	for v := p; v < n; v += e.nParts {
		// The master's last-active marks stay exact all run (the computed
		// sets always come back), so the seed takes them from here.
		req.AllActive = append(req.AllActive, e.lastActive[VertexID(v)])
	}
	req.Inbox = make([][]IncomingMessage, len(req.Active))
	if e.masterAuthSS == ss {
		req.AllValues = req.AllValues[:0]
		for v := p; v < n; v += e.nParts {
			req.AllValues = append(req.AllValues, e.values[VertexID(v)])
		}
		inbox := e.inboxes[p]
		for i, v := range req.Active {
			req.Inbox[i] = inbox[v]
		}
	} else {
		vals, inbox, err := e.replayState(ss, p)
		if err != nil {
			return err
		}
		req.AllValues = vals
		for i, v := range req.Active {
			req.Inbox[i] = inbox[v]
		}
	}
	req.Mode = ModeSeed
	return nil
}

// applyExecResult installs a transport result into the master's state: new
// values for the computed vertices, the partition's barrier scratch
// (outboxes, records, accounting), and its aggregator partials. Mirrors
// what runPartition would have left behind, so the barrier code downstream
// is unchanged. Partition-local, so safe from p's worker goroutine.
func (e *Engine) applyExecResult(p int, req *ExecRequest, res *ExecResult, out *partResult) {
	out.reset(e.nParts, false)
	if len(res.Spans) > 0 {
		e.cfg.Metrics.AddRemoteSpans(res.Spans)
	}
	if res.Crash != nil {
		out.crash = &CrashError{Vertex: res.Crash.Vertex, Superstep: res.Crash.Superstep, Err: res.Crash.Err()}
		return
	}
	if req.Mode != ModeClassic {
		// Worker-resident: the values stay on the worker. The master records
		// the computed set (identical to the request's active set — every
		// active vertex computes), the per-destination message counts, and
		// only the master-resident outbox columns below.
		out.computed = append(out.computed, req.Active...)
		out.dstCounts = append(out.dstCounts[:0], res.DstCounts...)
		out.residentRemote = true
	} else {
		for i, v := range res.Computed {
			e.values[v] = res.NewValues[i]
		}
		out.computed = append(out.computed, res.Computed...)
	}
	out.records = append(out.records, res.Records...)
	for dp := range res.Outbox {
		out.outbox[dp] = append(out.outbox[dp], res.Outbox[dp]...)
	}
	out.sent = res.Sent
	out.combinedSender = res.CombinedSender
	e.agg.applyPartial(p, res.Agg)
}

// transportRetryable classifies failed transport attempts for supervised
// retry: transport-layer failures and everything retryableCrash accepts
// (remote panics and injected faults arrive reconstructed with their
// sentinels intact) are worth re-executing; parent cancellation is not.
func transportRetryable(err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	return errors.Is(err, ErrTransport) || retryableCrash(err)
}

// transportCompute runs partition p's superstep through the configured
// transport, with the same supervision wrapper the local path uses: the
// attempt snapshot/reset is identical, so a retry (or the local fallback
// below) re-executes from the superstep barrier exactly like a supervised
// local re-execution. A transport with a worker pool (the TCP leg) fails a
// partition over to surviving workers internally, so an ErrTransport
// reaching this ladder means the pool is exhausted: when every supervised
// attempt still fails on a *transport* error — no worker can take the
// partition — it is pinned local for the rest of the run: the master
// executes it in-process (bit-identical result, same code) and sheds its
// provenance capture through the degraded-mode machinery, the same contract
// PR 3 applies to a partition whose capture keeps failing. A worker that
// later rejoins the pool serves other partitions; pinning is sticky by
// design (cheap, deterministic, and the gap accounting stays contiguous).
func (e *Engine) transportCompute(p, ss int, observing bool, ids []VertexID, results []partResult, durs []time.Duration) {
	start := time.Now()
	// The attempt snapshot only matters when a remote result writes values
	// back into the master (classic full-state mode). Resident-mode results
	// carry no Computed/NewValues — applyExecResult leaves e.values alone —
	// so the rollback would restore bytes that never changed; skip it.
	var snap []value.Value
	if !e.resident {
		snap = make([]value.Value, len(ids))
		for i, v := range ids {
			snap[i] = e.values[v]
		}
	}
	req := e.buildExecRequest(p, ss, observing, ids)
	attempt := func(actx context.Context) error {
		res, err := e.cfg.Transport.Exec(actx, req)
		if err != nil && errors.Is(err, ErrStateMiss) && req.Mode == ModeDelta {
			// The worker holds no resident state for this superstep (fresh
			// worker, failover target, or post-replay): upgrade the request
			// to a full-state seed in place — retries then keep the seed —
			// and re-send it.
			m := e.cfg.Metrics
			m.Counter(obs.MetricNetStateReseeds).Add(1)
			m.Tracef(obs.Info, "transport", ss, "partition %d resident-state miss; re-seeding worker", p)
			if serr := e.seedRequest(req); serr != nil {
				return serr
			}
			res, err = e.cfg.Transport.Exec(actx, req)
		}
		if err != nil {
			return err
		}
		e.applyExecResult(p, req, res, &results[p])
		if c := results[p].crash; c != nil {
			return c
		}
		return nil
	}
	reset := func() {
		if snap != nil {
			for i, v := range ids {
				e.values[v] = snap[i]
			}
		}
		e.agg.resetPartition(p)
		results[p].reset(e.nParts, false)
	}
	var err error
	if e.sup != nil {
		err = e.sup.Run(e.runCtx, p, ss, attempt, reset, transportRetryable)
	} else if err = attempt(e.runCtx); err != nil && errors.Is(err, ErrTransport) && e.runCtx.Err() == nil {
		// Without supervision the transport's own per-message retries are
		// the only retry budget; give the attempt one clean re-execution
		// before declaring the partition unreachable.
		reset()
		err = attempt(e.runCtx)
	}
	if err != nil {
		if errors.Is(err, ErrTransport) && e.runCtx.Err() == nil {
			m := e.cfg.Metrics
			m.Tracef(obs.Warn, "transport", ss,
				"partition %d unreachable (%v); pinning local and shedding its capture", p, err)
			m.Counter(obs.MetricNetLocalFallbacks).Add(1)
			e.localPinned[p].Store(true)
			e.cfg.Degrade.ShedNow(p, ss)
			reset()
			if e.resident {
				// The partition's state died with its workers: rebuild it
				// master-side from the last checkpoint plus replayed deltas
				// before executing locally, so the pinned run stays exact.
				if serr := e.seedLocalFromReplay(p, ss); serr != nil {
					v := VertexID(0)
					if len(ids) > 0 {
						v = ids[0]
					}
					results[p].crash = &CrashError{Vertex: v, Superstep: ss, Err: serr}
					if durs != nil {
						durs[p] = time.Since(start)
					}
					return
				}
			}
			if e.sup != nil {
				e.superviseCompute(p, ss, observing, ids, results, durs)
				return
			}
			e.runPartition(e.runCtx, p, ss, observing, ids, &results[p])
		} else if results[p].crash == nil {
			// Not a remote compute crash (those left their CrashError in the
			// scratch) and not eligible for local fallback — e.g. a transport
			// failure racing run cancellation. Clear any stale scratch and
			// surface the failure so the barrier aborts consistently instead
			// of delivering a partition that computed nothing.
			v := VertexID(0)
			if len(ids) > 0 {
				v = ids[0]
			}
			reset()
			results[p].crash = &CrashError{Vertex: v, Superstep: ss, Err: err}
		}
	}
	if req.TraceID != 0 {
		// The exchange umbrella span: this partition's whole transport
		// round for the superstep, including supervised retries and any
		// local fallback. Its SpanID is the ParentSpan the worker's child
		// spans and the TCP leg's rpc/backoff spans attached to.
		e.cfg.Metrics.RecordSpan(obs.Span{
			SpanID: req.ParentSpan, Proc: obs.ProcMaster, Name: obs.SpanExchange,
			Superstep: ss, Partition: p,
			Start: start.UnixNano(), Dur: int64(time.Since(start)),
			Tuples: int64(len(ids)),
		})
	}
	if durs != nil {
		durs[p] = time.Since(start)
	}
}

// aggregator helpers for the transport boundary ---------------------------

// currentSnapshot copies the merged previous-superstep aggregator values for
// an ExecRequest.
func (a *aggregators) currentSnapshot() map[string]float64 {
	if len(a.current) == 0 {
		return nil
	}
	m := make(map[string]float64, len(a.current))
	for k, v := range a.current {
		m[k] = v
	}
	return m
}

// setCurrent installs the master-supplied merged aggregator values on a
// worker-side engine.
func (a *aggregators) setCurrent(m map[string]float64) {
	cur := make(map[string]float64, len(m))
	for k, v := range m {
		cur[k] = v
	}
	a.current = cur
}

// partial extracts partition p's aggregator contributions in deterministic
// (name-sorted) order for the wire.
func (a *aggregators) partial(p int) []AggUpdate {
	m := a.parts[p]
	if len(m) == 0 {
		return nil
	}
	ups := make([]AggUpdate, 0, len(m))
	for name, c := range m {
		ups = append(ups, AggUpdate{Name: name, Op: c.op, Val: c.val, N: c.n})
	}
	sort.Slice(ups, func(i, j int) bool { return ups[i].Name < ups[j].Name })
	return ups
}

// applyPartial installs a remote partition's aggregator contributions on the
// master, bit-for-bit the cells local execution would have produced (the
// worker folded them with the same reduce order).
func (a *aggregators) applyPartial(p int, ups []AggUpdate) {
	if len(ups) == 0 {
		a.parts[p] = nil
		return
	}
	m := make(map[string]aggCell, len(ups))
	for _, u := range ups {
		m[u.Name] = aggCell{op: u.Op, val: u.Val, n: u.N}
	}
	a.parts[p] = m
}
