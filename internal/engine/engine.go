// Package engine implements a Pregel-style Bulk Synchronous Parallel (BSP)
// vertex-centric graph processing engine, the substrate the paper assumes
// (§2.1, Appendix A). It stands in for Apache Giraph: computation proceeds
// in supersteps separated by global barriers; all vertices run the same
// vertex program in parallel; messages sent in superstep i are delivered at
// superstep i+1; a vertex computes only if it received messages (all
// vertices compute at superstep 0); the run ends when no messages remain or
// a superstep limit is reached.
//
// "Distribution" is simulated: the graph is hash-partitioned across P
// in-process workers standing in for cluster nodes. Observers (package-level
// hook interface) receive per-superstep vertex records — the transient
// provenance stream that Ariadne's capture and online query evaluation
// consume without modifying the vertex program.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ariadne/internal/fault"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/supervise"
	"ariadne/internal/value"
)

// VertexID aliases the graph vertex identifier.
type VertexID = graph.VertexID

// IncomingMessage is a message delivered to a vertex, retaining the sender
// for provenance (receive-message tuples need the source vertex).
type IncomingMessage struct {
	Src VertexID
	Val value.Value
}

// SentMessage records a message produced by a vertex during Compute.
type SentMessage struct {
	Dst VertexID
	Val value.Value
}

// ProvFact is an auxiliary provenance fact emitted by a vertex program via
// Context.EmitProv — the mechanism behind analytics-specific tables such as
// the paper's prov-error / prov-prediction for ALS (Queries 7, 8).
type ProvFact struct {
	Table string
	Args  []value.Value
}

// Program is a vertex program in the VC model (paper Algorithm 1):
// read messages, update the vertex value, send messages to neighbors.
type Program interface {
	// InitialValue returns the value a vertex holds entering superstep 0.
	InitialValue(g *graph.Graph, v VertexID) value.Value
	// Compute runs the per-vertex step. Returning an error aborts the run
	// and is reported with the culprit vertex and superstep (the
	// "crash-culprit" debugging scenario).
	Compute(ctx *Context, msgs []IncomingMessage) error
}

// Halter is an optional Program extension: after each superstep the engine
// asks whether to stop (e.g. ALS halts when the aggregated error converges).
type Halter interface {
	ShouldHalt(agg AggregatorReader, superstep int) bool
}

// Config controls a run.
type Config struct {
	// MaxSupersteps bounds the run; <=0 means unbounded (until quiescence).
	MaxSupersteps int
	// Partitions is the number of simulated cluster workers.
	// <=0 means GOMAXPROCS.
	Partitions int
	// Combiner, if set, merges messages addressed to the same vertex at the
	// sender side (e.g. min for SSSP). The engine ignores it when any
	// observer needs raw per-message delivery (NeedsRawMessages).
	Combiner func(a, b value.Value) value.Value
	// Observers receive the per-superstep transient provenance stream.
	Observers []Observer
	// ActiveAt, when set, forces the returned vertices to compute at the
	// given superstep even without incoming messages (in addition to
	// message receivers). Returning nil everywhere and having no messages
	// still ends the run. Offline layered evaluation uses this to replay a
	// captured provenance graph whose activation pattern is known
	// (paper §5.1: only a single layer's nodes execute at each superstep).
	ActiveAt func(superstep int) []VertexID
	// Context, when set, is checked at each superstep barrier: a hung or
	// runaway analytic aborts cleanly with an error wrapping ctx.Err()
	// instead of blocking forever.
	Context context.Context
	// Checkpoint, when set with a positive Interval, snapshots engine and
	// observer state at superstep boundaries for crash recovery via Resume.
	Checkpoint *CheckpointConfig
	// Fault, when set, injects deterministic faults at guarded sites
	// (Compute panics, checkpoint write errors) for recovery testing.
	Fault *fault.Injector
	// Metrics, when set, receives per-superstep profiles, counters, and
	// trace events. nil disables instrumentation at ~zero cost (the hot
	// path pays one nil check and allocates nothing per superstep).
	Metrics *obs.Metrics
	// Supervise, when set, wraps each partition worker in a supervised
	// execution unit: per-partition superstep deadlines, bounded retry
	// with partition-scoped recovery from the superstep barrier (only the
	// failed partition re-executes; the other workers' results stand), and
	// straggler flagging against a multiple-of-median policy. nil keeps
	// the pre-supervision behavior: any partition failure aborts the run.
	Supervise *supervise.Config
	// Transport, when set, executes each partition's superstep compute
	// through it (in-process executor or remote worker processes) instead of
	// calling the vertex programs directly. The barrier — delivery,
	// combining, observation, checkpointing — still runs on this engine, so
	// results are bit-identical to a local run. Transport failures retry
	// through Supervise; a partition unreachable past MaxRetries is pinned
	// local for the rest of the run and its capture shed via Degrade.
	Transport Transport
	// Degrade, when set alongside Transport, receives ShedNow for a
	// partition that fell back to local execution after transport failure,
	// so the capture observer sheds its provenance from that superstep on
	// (the same degraded-mode contract repeated capture failures trigger).
	Degrade *supervise.DegradeState
	// SequentialBarrier selects the seed single-threaded barrier: one
	// sequential merge loop over every outbox, fresh inbox maps each
	// superstep, and a global sort of the observer records. Combining
	// semantics are identical in both modes — the sender pre-combines per
	// destination vertex, then the barrier folds the per-partition partial
	// values in ascending source-partition order — so the two barriers are
	// bit-identical by construction and differ only in parallelism and
	// allocation behavior. It is the reference implementation the parallel
	// barrier is differentially tested against (and the "before" leg of
	// BenchmarkBarrier); production runs leave it false.
	SequentialBarrier bool
}

// Observer consumes per-superstep vertex records. ObserveSuperstep is called
// once per superstep, after the barrier, with the records of every vertex
// that computed. Records (and their slices) are only valid during the call
// unless the observer copies them.
type Observer interface {
	// NeedsRawMessages reports whether the observer must see individual
	// received messages; if any observer returns true the engine disables
	// the combiner (DESIGN.md decision 2).
	NeedsRawMessages() bool
	ObserveSuperstep(obs *SuperstepView) error
	// Finish is called once after the last superstep.
	Finish(lastSuperstep int) error
}

// SuperstepView is the transient provenance of one completed superstep.
type SuperstepView struct {
	Superstep int
	Records   []VertexRecord
	Engine    *Engine
}

// VertexRecord describes the execution of one vertex at one superstep —
// a node of the paper's (unfolded) provenance graph with its incident
// message edges and evolution information.
type VertexRecord struct {
	ID        VertexID
	Superstep int
	// PrevActive is the previous superstep this vertex computed in, or -1.
	// Together with Superstep it yields the evolution edge.
	PrevActive int
	OldValue   value.Value
	NewValue   value.Value
	Received   []IncomingMessage
	Sent       []SentMessage
	Emitted    []ProvFact
}

// RunStats summarizes a completed run. The original fields (Supersteps,
// MessagesSent, ActiveVertices, Aborted) keep their meaning; the rest make
// previously implicit totals observable. All totals are cumulative across
// a checkpoint/Resume boundary.
type RunStats struct {
	Supersteps     int
	MessagesSent   int64
	ActiveVertices []int // per superstep
	Aborted        bool

	// MessagesDelivered counts inbox entries after sender-side combining;
	// MessagesCombined counts the messages the combiner merged away
	// (MessagesSent = MessagesDelivered + MessagesCombined).
	MessagesDelivered int64
	MessagesCombined  int64
	// MessagesCombinedSender counts the subset of MessagesCombined merged
	// inside the sending partition (before the barrier ever saw them); the
	// remainder was combined at the barrier when outboxes from different
	// partitions met. Identical in both barrier modes, since combining
	// semantics are shared.
	MessagesCombinedSender int64
	// PeakActiveVertices is the maximum per-superstep active-vertex count.
	PeakActiveVertices int
	// Partition-supervision totals, zero when supervision is off:
	// re-executed partition attempts, attempts cancelled by the partition
	// deadline, and straggler flags raised by the multiple-of-median
	// policy.
	PartitionRetries int64
	DeadlineHits     int64
	StragglerFlags   int64
	// Wall time per phase: parallel compute, barrier bookkeeping (message
	// delivery, aggregator merge), observer work (capture and online query
	// evaluation), and checkpoint writes.
	ComputeWall    time.Duration
	BarrierWall    time.Duration
	ObserveWall    time.Duration
	CheckpointWall time.Duration
}

// CrashError reports a vertex program failure with its culprit — the
// paper's crash-culprit debugging scenario. It wraps the underlying cause,
// so errors.Is/As reach both the CrashError and (for recovered panics)
// ErrComputePanic through every API layer.
type CrashError struct {
	Vertex    VertexID
	Superstep int
	Err       error
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("engine: vertex %d crashed at superstep %d: %v", e.Vertex, e.Superstep, e.Err)
}

func (e *CrashError) Unwrap() error { return e.Err }

// ErrComputePanic is the cause recorded in a CrashError when a vertex
// program panicked (rather than returning an error): the per-partition
// recover() converts the panic so one bad vertex degrades into a reported
// crash instead of killing the process.
var ErrComputePanic = errors.New("vertex program panicked")

// Engine executes one Program over one Graph.
type Engine struct {
	g       *graph.Graph
	prog    Program
	cfg     Config
	nParts  int
	rawMsgs bool // at least one observer needs raw messages

	values     []value.Value
	lastActive []int32 // previous superstep each vertex computed in, -1 if never

	// inboxes[p] holds messages for vertices of partition p, keyed by vertex.
	inboxes []map[VertexID][]IncomingMessage

	// Barrier buffer pools, reused across supersteps so the steady state
	// allocates no per-superstep maps or slices (ISSUE 4 buffer reuse).
	// spareInboxes[p] is last superstep's (cleared) inbox map awaiting
	// reuse; msgFree[p] recycles the per-vertex message slices that map
	// held; results is the per-partition superstep scratch; recBuf is the
	// merged observer-record buffer. Each index is owned by exactly one
	// delivery-shard goroutine during the barrier, so none of this needs
	// locks.
	spareInboxes []map[VertexID][]IncomingMessage
	msgFree      [][][]IncomingMessage
	results      []partResult
	recBuf       []VertexRecord
	mergeHeads   []int

	// sendComb is the combiner applied inside runPartition per destination
	// vertex as messages are emitted (nil when raw messages are needed or
	// under SequentialBarrier, which combines only at the barrier).
	sendComb func(a, b value.Value) value.Value

	agg  *aggregators
	stat RunStats

	// startSS is the superstep Run begins at: 0 for a fresh engine, the
	// saved resume point for one restored by Resume.
	startSS int

	// sup supervises partition workers when Config.Supervise is set.
	sup *supervise.Supervisor
	// runCtx is the run's parent context, distinguishing a per-partition
	// deadline expiry from user cancellation inside workers.
	runCtx context.Context
	// lastCkptSS is the resume superstep of the newest checkpoint written
	// (or restored), so the cancellation path never writes a duplicate.
	lastCkptSS int

	// localPinned[p] marks a partition whose transport leg was declared
	// unreachable: the engine executes it in-process from then on. Atomic
	// because the pinning partition goroutine writes while later supersteps'
	// goroutines read.
	localPinned []atomic.Bool

	// Worker-resident state (PR 9). When the transport keeps partition state
	// on the workers, the master stops shipping frontiers and relaying
	// outboxes: it tracks only each partition's next active set
	// (residentActive, from the delivery barrier), which superstep its own
	// arrays were last authoritative for (masterAuthSS, advanced by
	// checkpoint/final collects), and the barrier frontier (stateSS). A
	// partition pinned local mid-superstep records the superstep in
	// pinnedAtSS so that superstep's delivery knows its fragments died with
	// the workers. effComb is the run's effective combiner (nil when an
	// observer needs raw messages) — the replay engine must match it.
	resident       bool
	stateful       StatefulTransport
	residentActive [][]VertexID
	pinnedAtSS     []int
	masterAuthSS   int
	stateSS        int
	effComb        func(a, b value.Value) value.Value

	// Deterministic replay for re-hydration: a private scratch engine over
	// the same graph and program, seeded from the newest checkpoint and
	// advanced superstep by superstep to recover state that died with a
	// worker. Guarded by replayMu (partition goroutines share it).
	replayMu sync.Mutex
	replay   *Engine
	replaySS int
}

// New creates an engine for prog over g.
func New(g *graph.Graph, prog Program, cfg Config) (*Engine, error) {
	if g == nil || prog == nil {
		return nil, errors.New("engine: nil graph or program")
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = runtime.GOMAXPROCS(0)
	}
	if cfg.Transport != nil && cfg.SequentialBarrier {
		return nil, errors.New("engine: Transport requires the sharded barrier (SequentialBarrier must be off)")
	}
	e := &Engine{g: g, prog: prog, cfg: cfg, nParts: cfg.Partitions}
	for _, o := range cfg.Observers {
		if o.NeedsRawMessages() {
			e.rawMsgs = true
		}
	}
	n := g.NumVertices()
	e.values = make([]value.Value, n)
	e.lastActive = make([]int32, n)
	for v := 0; v < n; v++ {
		e.values[v] = prog.InitialValue(g, VertexID(v))
		e.lastActive[v] = -1
	}
	e.inboxes = make([]map[VertexID][]IncomingMessage, e.nParts)
	for p := range e.inboxes {
		e.inboxes[p] = make(map[VertexID][]IncomingMessage)
	}
	e.spareInboxes = make([]map[VertexID][]IncomingMessage, e.nParts)
	e.msgFree = make([][][]IncomingMessage, e.nParts)
	e.results = make([]partResult, e.nParts)
	e.mergeHeads = make([]int, e.nParts)
	e.agg = newAggregators(e.nParts)
	e.localPinned = make([]atomic.Bool, e.nParts)
	e.runCtx = context.Background()
	e.lastCkptSS = -1
	if st, ok := cfg.Transport.(StatefulTransport); ok && st.Resident() {
		e.resident = true
		e.stateful = st
		e.residentActive = make([][]VertexID, e.nParts)
		e.pinnedAtSS = make([]int, e.nParts)
		for i := range e.pinnedAtSS {
			e.pinnedAtSS[i] = -2
		}
	}
	if cfg.Supervise != nil {
		e.sup = supervise.New(*cfg.Supervise, e.nParts, cfg.Metrics)
	}
	return e, nil
}

// Graph returns the input graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Values returns the current vertex values (the analytic result after Run).
func (e *Engine) Values() []value.Value { return e.values }

// Stats returns run statistics.
func (e *Engine) Stats() RunStats { return e.stat }

// Aggregated exposes last-superstep aggregator values.
func (e *Engine) Aggregated() AggregatorReader { return e.agg.reader() }

// partition maps a vertex to its worker. The modulo runs in uint64 so the
// index is non-negative on every platform: VertexID is uint32, and on a
// 32-bit build int(v) truncates IDs above 2^31 to negative values (programs
// may SendMessage to any ID, not just ones the loader assigned).
func (e *Engine) partition(v VertexID) int { return int(uint64(v) % uint64(e.nParts)) }

// Partitions returns the simulated worker count.
func (e *Engine) Partitions() int { return e.nParts }

// PartitionOf returns the worker partition that owns vertex v — the
// failure/degradation domain observers (capture shedding, gap records) are
// scoped to.
func (e *Engine) PartitionOf(v VertexID) int { return e.partition(v) }

// Run executes supersteps until quiescence, the superstep limit, a Halter
// stop, or a vertex crash.
func (e *Engine) Run() (RunStats, error) {
	observing := len(e.cfg.Observers) > 0
	combiner := e.cfg.Combiner
	if e.rawMsgs {
		combiner = nil
	}
	// Sender-side combining: runPartition pre-combines per destination
	// vertex as messages are emitted, so the barrier sees pre-combined
	// outboxes. The capture path is unaffected — raw send-message tuples
	// come from VertexRecord.Sent (copied from the per-vertex send list
	// before combining), and any observer that needs raw *deliveries*
	// already disabled the combiner entirely via NeedsRawMessages.
	// Both barrier modes combine at the sender: the association tree
	// (fold within partition at the sender, fold across partitions in
	// ascending order at the barrier) is the engine's canonical combining
	// order, so sequential and sharded delivery are bit-identical even for
	// non-associative float folds.
	e.sendComb = combiner
	e.effComb = combiner
	halter, _ := e.prog.(Halter)
	m := e.cfg.Metrics
	if e.cfg.Context != nil {
		e.runCtx = e.cfg.Context
	}
	if e.resident {
		// The master's arrays are authoritative exactly at the run's start
		// (fresh init, or a checkpoint restore); workers take over from the
		// first superstep on. Seed the active tracking from the inboxes —
		// empty on a fresh run (superstep 0 activates everything anyway),
		// the restored frontier on a resume.
		e.masterAuthSS = e.startSS
		e.stateSS = e.startSS
		for p := 0; p < e.nParts; p++ {
			act := make([]VertexID, 0, len(e.inboxes[p]))
			for v := range e.inboxes[p] {
				act = append(act, v)
			}
			sort.Slice(act, func(i, j int) bool { return act[i] < act[j] })
			e.residentActive[p] = act
		}
	}

	for ss := e.startSS; ; ss++ {
		if e.cfg.MaxSupersteps > 0 && ss >= e.cfg.MaxSupersteps {
			break
		}
		if ctx := e.cfg.Context; ctx != nil {
			select {
			case <-ctx.Done():
				e.stat.Aborted = true
				m.Tracef(obs.Warn, "engine", ss, "run canceled: %v", ctx.Err())
				// The engine sits exactly at the superstep-ss barrier here,
				// so the state is consistent: write a final checkpoint (when
				// configured) so the interrupted run resumes from this
				// superstep instead of the last periodic snapshot.
				if ck := e.cfg.Checkpoint; ck != nil && ck.Dir != "" && ck.Interval > 0 && ss != e.lastCkptSS {
					if e.resident {
						if cerr := e.collectResident(ss); cerr != nil {
							m.Tracef(obs.Error, "checkpoint", ss, "state collect before final checkpoint failed: %v", cerr)
						}
					}
					if ckErr := e.writeCheckpoint(ss); ckErr != nil {
						m.Tracef(obs.Error, "checkpoint", ss, "final checkpoint on cancel failed: %v", ckErr)
					} else {
						m.Tracef(obs.Info, "checkpoint", ss, "wrote final checkpoint before cancel exit")
					}
				}
				return e.stat, fmt.Errorf("engine: run canceled at superstep %d: %w", ss, ctx.Err())
			default:
			}
		}
		// Determine active vertices: all at superstep 0, else inbox owners
		// plus any ActiveAt-forced vertices.
		var forced [][]VertexID
		if e.cfg.ActiveAt != nil {
			forced = make([][]VertexID, e.nParts)
			for _, v := range e.cfg.ActiveAt(ss) {
				p := e.partition(v)
				forced[p] = append(forced[p], v)
			}
		}
		totalActive := 0
		if ss == 0 {
			totalActive = e.g.NumVertices()
		} else {
			for p := 0; p < e.nParts; p++ {
				if e.resident && !e.localPinned[p].Load() {
					// Worker-resident partition: the active set came back
					// from the delivery barrier, not a master inbox.
					act := e.residentActive[p]
					totalActive += len(act)
					if forced != nil {
						for _, v := range forced[p] {
							if !containsVertex(act, v) {
								totalActive++
							}
						}
					}
					continue
				}
				totalActive += len(e.inboxes[p])
				if forced != nil {
					for _, v := range forced[p] {
						if _, hasMsg := e.inboxes[p][v]; !hasMsg {
							totalActive++
						}
					}
				}
			}
			if totalActive == 0 {
				break
			}
		}

		if totalActive > e.stat.PeakActiveVertices {
			e.stat.PeakActiveVertices = totalActive
		}
		m.BeginSuperstep(ss, totalActive)

		computeStart := time.Now()
		e.agg.beginSuperstep()
		results := e.results
		var durs []time.Duration
		if e.sup != nil {
			durs = make([]time.Duration, e.nParts)
		}
		var wg sync.WaitGroup
		for p := 0; p < e.nParts; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				var fp []VertexID
				if forced != nil {
					fp = forced[p]
				}
				ids := e.activeIDs(p, ss, fp)
				spanned := m.SpansEnabled()
				var t0 time.Time
				if spanned {
					t0 = time.Now()
				}
				switch {
				case e.cfg.Transport != nil && !e.localPinned[p].Load():
					e.transportCompute(p, ss, observing, ids, results, durs)
				case e.sup == nil:
					e.runPartition(e.runCtx, p, ss, observing, ids, &results[p])
				default:
					e.superviseCompute(p, ss, observing, ids, results, durs)
				}
				if spanned {
					m.RecordSpan(obs.Span{
						Proc: obs.ProcMaster, Name: obs.SpanCompute,
						Superstep: ss, Partition: p,
						Start: t0.UnixNano(), Dur: int64(time.Since(t0)),
						Tuples: int64(len(ids)),
					})
				}
			}(p)
		}
		wg.Wait()
		computeDur := time.Since(computeStart)
		e.stat.ComputeWall += computeDur

		// Flush supervision tallies at the barrier — the supervisor
		// accumulated them atomically from the worker goroutines; the
		// profile under construction is engine-goroutine-only.
		if e.sup != nil {
			sum := e.sup.EndSuperstep(ss, durs)
			e.stat.PartitionRetries += sum.Retries
			e.stat.DeadlineHits += sum.DeadlineHits
			e.stat.StragglerFlags += int64(len(sum.Stragglers))
			m.SuperstepSupervision(sum.Retries, sum.DeadlineHits, sum.Stragglers)
		}

		// Barrier: surface crashes (deterministically: lowest vertex wins).
		var crash *CrashError
		for p := range results {
			if c := results[p].crash; c != nil && (crash == nil || c.Vertex < crash.Vertex) {
				crash = c
			}
		}
		if crash != nil {
			e.stat.Aborted = true
			e.stat.Supersteps = ss + 1
			m.AbortSuperstep()
			m.Tracef(obs.Error, "engine", ss, "vertex %d crashed: %v", crash.Vertex, crash.Err)
			return e.stat, crash
		}

		// Barrier: merge aggregators, deliver messages, account stats.
		barrierStart := time.Now()
		e.agg.endSuperstep()
		var sent, delivered, combined, combinedSender, maxShard int64
		for ri := range results {
			sent += results[ri].sent
			combinedSender += results[ri].combinedSender
		}
		if e.resident {
			var derr error
			delivered, combined, maxShard, derr = e.residentDeliver(ss, combiner, results)
			if derr != nil {
				e.stat.Aborted = true
				e.stat.Supersteps = ss + 1
				m.AbortSuperstep()
				m.Tracef(obs.Error, "engine", ss, "delivery re-hydration failed: %v", derr)
				return e.stat, derr
			}
			e.stateSS = ss + 1
		} else if e.cfg.SequentialBarrier {
			delivered, combined = e.sequentialDeliver(combiner, results)
		} else {
			delivered, combined, maxShard = e.shardedDeliver(combiner, results)
		}
		combined += combinedSender
		e.stat.MessagesSent += sent
		e.stat.MessagesDelivered += delivered
		e.stat.MessagesCombined += combined
		e.stat.MessagesCombinedSender += combinedSender
		e.stat.ActiveVertices = append(e.stat.ActiveVertices, totalActive)
		e.stat.Supersteps = ss + 1
		barrierDur := time.Since(barrierStart)
		e.stat.BarrierWall += barrierDur
		m.SuperstepMessages(sent, delivered, combined)
		m.SuperstepDelivery(combinedSender, maxShard, e.nParts)

		// Observers see the completed superstep as one batch (one provenance
		// layer), in deterministic vertex order.
		var observeDur time.Duration
		if observing {
			observeStart := time.Now()
			recs := e.mergeRecords(results)
			view := &SuperstepView{Superstep: ss, Records: recs, Engine: e}
			for _, o := range e.cfg.Observers {
				if err := o.ObserveSuperstep(view); err != nil {
					e.stat.Aborted = true
					m.AbortSuperstep()
					m.Tracef(obs.Error, "engine", ss, "observer %T failed: %v", o, err)
					return e.stat, fmt.Errorf("engine: observer failed at superstep %d: %w", ss, err)
				}
			}
			observeDur = time.Since(observeStart)
			e.stat.ObserveWall += observeDur
		}
		m.SuperstepTimings(computeDur, barrierDur, observeDur)

		// Mark computed vertices' last-active superstep (after observers,
		// who need the pre-superstep PrevActive captured in records).
		for _, r := range results {
			for _, v := range r.computed {
				e.lastActive[v] = int32(ss)
			}
		}

		// The superstep's profile is complete; publish it before the
		// checkpoint below so the snapshot carries metrics through
		// superstep ss and a recovered run reports cumulative numbers.
		m.EndSuperstep()

		// Checkpoint at the barrier: the snapshot holds everything superstep
		// ss+1 depends on, including observer state as of the superstep the
		// observers just processed.
		if ck := e.cfg.Checkpoint; ck != nil && ck.Dir != "" && ck.Interval > 0 && (ss+1)%ck.Interval == 0 {
			if e.resident {
				// Pull the worker-resident state home first so the snapshot
				// holds the exact frontier (and later seeds come cheap).
				if err := e.collectResident(ss + 1); err != nil {
					e.stat.Aborted = true
					return e.stat, err
				}
			}
			if err := e.writeCheckpoint(ss + 1); err != nil {
				e.stat.Aborted = true
				return e.stat, err
			}
		}

		if halter != nil && halter.ShouldHalt(e.agg.reader(), ss) {
			break
		}
		if sent == 0 {
			// Quiescence — unless forced activation has more work queued.
			if e.cfg.ActiveAt == nil || len(e.cfg.ActiveAt(ss+1)) == 0 {
				break
			}
		}
	}

	if e.resident {
		// The run is over: pull every worker-resident partition's final
		// state back into the master's arrays so Values() reads the result.
		if err := e.collectResident(e.stateSS); err != nil {
			return e.stat, err
		}
	}

	for _, o := range e.cfg.Observers {
		if err := o.Finish(e.stat.Supersteps - 1); err != nil {
			return e.stat, fmt.Errorf("engine: observer finish: %w", err)
		}
	}
	return e.stat, nil
}

// containsVertex reports membership in a sorted vertex slice.
func containsVertex(ids []VertexID, v VertexID) bool {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= v })
	return i < len(ids) && ids[i] == v
}

// superviseCompute runs partition p's superstep under the supervisor:
// snapshot the partition's slice of the barrier state, attempt, and on a
// retryable failure roll back and re-execute only this partition. Runs on
// the partition's worker goroutine; everything it mutates (values of ids,
// the partition's aggregator map, results[p], durs[p]) is partition-local.
func (e *Engine) superviseCompute(p, ss int, observing bool, ids []VertexID, results []partResult, durs []time.Duration) {
	start := time.Now()
	snap := make([]value.Value, len(ids))
	for i, v := range ids {
		snap[i] = e.values[v]
	}
	attempt := func(actx context.Context) error {
		e.runPartition(actx, p, ss, observing, ids, &results[p])
		if c := results[p].crash; c != nil {
			return c
		}
		return nil
	}
	reset := func() {
		for i, v := range ids {
			e.values[v] = snap[i]
		}
		e.agg.resetPartition(p)
	}
	e.sup.Run(e.runCtx, p, ss, attempt, reset, retryableCrash)
	durs[p] = time.Since(start)
}

// retryableCrash classifies partition failures for supervised retry:
// vertex-program panics, injected faults, and deadline expiries are
// transient (a re-execution from the barrier state may succeed);
// program-logic errors and run cancellation are not.
func retryableCrash(err error) bool {
	if errors.Is(err, context.Canceled) {
		return false
	}
	return errors.Is(err, ErrComputePanic) || errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, context.DeadlineExceeded)
}

// computeOne runs Compute for one vertex with panic containment: a panic in
// the vertex program (or one injected at the compute fault site) becomes an
// ErrComputePanic-wrapped error, which the barrier surfaces as a CrashError
// with the culprit vertex and superstep instead of killing the process.
func (e *Engine) computeOne(actx context.Context, ctx *Context, v VertexID, ss, p int, msgs []IncomingMessage) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrComputePanic, r)
		}
	}()
	if ferr := e.cfg.Fault.HitWait(actx, fault.SiteCompute, ss, p, int64(v)); ferr != nil {
		return ferr
	}
	return e.prog.Compute(ctx, msgs)
}

type partResult struct {
	outbox   [][]OutMessage // destination partition -> messages
	records  []VertexRecord
	computed []VertexID
	crash    *CrashError
	// combIdx maps a destination vertex to its pre-combined message's
	// index inside outbox[partition(dst)] (sender-side combining).
	combIdx map[VertexID]int32
	// sent counts raw messages emitted by the partition's vertices this
	// superstep (before any combining); combinedSender counts those the
	// sender-side combiner merged away.
	sent           int64
	combinedSender int64
	// residentRemote marks a result produced by a worker-resident exec: the
	// routed outbox columns live on the workers, and dstCounts carries their
	// per-destination-partition sizes for barrier accounting.
	residentRemote bool
	dstCounts      []int64
}

// reset prepares the scratch for a new superstep (or a supervised retry),
// keeping every backing array for reuse.
func (r *partResult) reset(nParts int, combining bool) {
	if r.outbox == nil {
		r.outbox = make([][]OutMessage, nParts)
	}
	for i := range r.outbox {
		r.outbox[i] = r.outbox[i][:0]
	}
	r.records = r.records[:0]
	r.computed = r.computed[:0]
	r.crash = nil
	r.sent, r.combinedSender = 0, 0
	r.residentRemote = false
	r.dstCounts = r.dstCounts[:0]
	if combining {
		if r.combIdx == nil {
			r.combIdx = make(map[VertexID]int32)
		} else {
			clear(r.combIdx)
		}
	}
}

// sequentialDeliver is the seed barrier: one loop over every outbox in
// ascending source-partition order, building freshly allocated inbox maps.
// With a combiner set it folds the sender-pre-combined partial values — the
// same association tree as the sharded barrier, so the two are
// bit-identical. Kept as the reference leg for differential tests and
// BenchmarkBarrier.
func (e *Engine) sequentialDeliver(combiner func(a, b value.Value) value.Value, results []partResult) (delivered, combined int64) {
	for p := range e.inboxes {
		e.inboxes[p] = make(map[VertexID][]IncomingMessage)
	}
	for ri := range results {
		r := &results[ri]
		for dp, msgs := range r.outbox {
			for _, om := range msgs {
				if combiner != nil {
					if ex := e.inboxes[dp][om.Dst]; len(ex) > 0 {
						ex[0].Val = combiner(ex[0].Val, om.Val)
						combined++
						continue
					}
				}
				e.inboxes[dp][om.Dst] = append(e.inboxes[dp][om.Dst], IncomingMessage{Src: om.Src, Val: om.Val})
				delivered++
			}
		}
	}
	return delivered, combined
}

// shardedDeliver is the parallel barrier: destination partition p's inbox is
// built by exactly one goroutine, which drains outbox[p] of every source
// partition in ascending source order — so for any destination vertex the
// merge order (and therefore every combined value, bit for bit) matches the
// sequential path. Inbox maps and message slices are recycled from the
// previous superstep instead of reallocated.
//
// Combining composes across the two stages: within a partition the sender
// merged its own messages left-to-right in emission order; here the
// per-partition partial values meet and merge in ascending partition order.
// sequentialDeliver folds the same pre-combined outboxes in the same order,
// so the two barriers share one association tree and stay bit-identical
// even for non-associative float combiners.
func (e *Engine) shardedDeliver(combiner func(a, b value.Value) value.Value, results []partResult) (delivered, combined, maxShard int64) {
	shardDelivered := make([]int64, e.nParts)
	shardCombined := make([]int64, e.nParts)
	var wg sync.WaitGroup
	for dp := 0; dp < e.nParts; dp++ {
		wg.Add(1)
		go func(dp int) {
			defer wg.Done()
			shardDelivered[dp], shardCombined[dp] = e.deliverColumn(dp, combiner, results)
		}(dp)
	}
	wg.Wait()
	for dp := 0; dp < e.nParts; dp++ {
		delivered += shardDelivered[dp]
		combined += shardCombined[dp]
		if shardDelivered[dp] > maxShard {
			maxShard = shardDelivered[dp]
		}
	}
	return delivered, combined, maxShard
}

// deliverColumn builds destination partition dp's next inbox from every
// source partition's outbox column, in ascending source order — the
// per-shard body of shardedDeliver, also reused by the resident barrier for
// master-resident (pinned) partitions. Inbox maps and message slices are
// recycled from the previous superstep instead of reallocated. Safe to call
// concurrently for distinct dp (everything touched is dp-indexed).
func (e *Engine) deliverColumn(dp int, combiner func(a, b value.Value) value.Value, results []partResult) (nDelivered, nCombined int64) {
	// Recycle last superstep's inbox: its message slices were fully
	// consumed by the compute phase (observers copied what they
	// keep), so both the map and the slices return to the pool.
	old := e.inboxes[dp]
	free := e.msgFree[dp]
	for _, s := range old {
		if cap(s) > 0 {
			free = append(free, s[:0])
		}
	}
	clear(old)
	next := e.spareInboxes[dp]
	if next == nil {
		next = make(map[VertexID][]IncomingMessage)
	}
	for sp := range results {
		for _, om := range results[sp].outbox[dp] {
			if combiner != nil {
				if ex := next[om.Dst]; len(ex) > 0 {
					ex[0].Val = combiner(ex[0].Val, om.Val)
					nCombined++
					continue
				}
			}
			s := next[om.Dst]
			if s == nil && len(free) > 0 {
				s = free[len(free)-1]
				free = free[:len(free)-1]
			}
			next[om.Dst] = append(s, IncomingMessage{Src: om.Src, Val: om.Val})
			nDelivered++
		}
	}
	e.inboxes[dp] = next
	e.spareInboxes[dp] = old
	e.msgFree[dp] = free
	return nDelivered, nCombined
}

// mergeRecords builds the superstep's observer view in ascending vertex
// order. Each partition produced its records in ascending order already
// (activeIDs sorts), so a k-way merge replaces the seed's global
// sort.Slice; the merged buffer is reused across supersteps (the Observer
// contract already says records are only valid during the call). Under
// SequentialBarrier the seed's copy-and-sort is kept verbatim.
func (e *Engine) mergeRecords(results []partResult) []VertexRecord {
	if e.cfg.SequentialBarrier {
		var recs []VertexRecord
		for ri := range results {
			recs = append(recs, results[ri].records...)
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
		return recs
	}
	recs := e.recBuf[:0]
	heads := e.mergeHeads
	for p := range heads {
		heads[p] = 0
	}
	for {
		best := -1
		for p := range results {
			if heads[p] >= len(results[p].records) {
				continue
			}
			if best < 0 || results[p].records[heads[p]].ID < results[best].records[heads[best]].ID {
				best = p
			}
		}
		if best < 0 {
			break
		}
		recs = append(recs, results[best].records[heads[best]])
		heads[best]++
	}
	e.recBuf = recs
	return recs
}

// activeIDs returns partition p's active vertices for superstep ss in
// deterministic ascending order: every owned vertex at superstep 0, else
// the partition's inbox owners plus any ActiveAt-forced vertices. Computed
// once per superstep so a supervised re-execution replays the same set.
func (e *Engine) activeIDs(p, ss int, forced []VertexID) []VertexID {
	if ss == 0 {
		var ids []VertexID
		for v := p; v < e.g.NumVertices(); v += e.nParts {
			ids = append(ids, VertexID(v))
		}
		return ids
	}
	if e.resident && !e.localPinned[p].Load() {
		act := e.residentActive[p]
		ids := make([]VertexID, 0, len(act)+len(forced))
		ids = append(ids, act...)
		for _, v := range forced {
			if !containsVertex(act, v) {
				ids = append(ids, v)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}
	inbox := e.inboxes[p]
	ids := make([]VertexID, 0, len(inbox)+len(forced))
	for v := range inbox {
		ids = append(ids, v)
	}
	for _, v := range forced {
		if _, hasMsg := inbox[v]; !hasMsg {
			ids = append(ids, v)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// runPartition computes the given active vertices of partition p for
// superstep ss. actx bounds the attempt: injected hangs and delays block
// on it, and between vertices an expired per-partition deadline (but not
// parent cancellation, which the superstep-start check handles so the
// barrier state stays consistent) aborts the partition early.
func (e *Engine) runPartition(actx context.Context, p, ss int, observing bool, ids []VertexID, res *partResult) {
	comb := e.sendComb
	res.reset(e.nParts, comb != nil)
	ctx := &Context{engine: e, superstep: ss, partition: p}

	compute := func(v VertexID, msgs []IncomingMessage) bool {
		// Deterministic message order regardless of worker scheduling.
		sort.Slice(msgs, func(i, j int) bool {
			if msgs[i].Src != msgs[j].Src {
				return msgs[i].Src < msgs[j].Src
			}
			return msgs[i].Val.Compare(msgs[j].Val) < 0
		})
		ctx.reset(v)
		old := e.values[v]
		if err := e.computeOne(actx, ctx, v, ss, p, msgs); err != nil {
			res.crash = &CrashError{Vertex: v, Superstep: ss, Err: err}
			return false
		}
		// Flush this vertex's outgoing messages into the partition outbox.
		// ctx.sent always holds the raw sends (capture reads them from the
		// VertexRecord below); when a sender-side combiner is active the
		// outbox keeps only one pre-combined message per destination vertex,
		// merged left-to-right in emission order — the same association
		// order the sequential barrier would use for this partition.
		res.sent += int64(len(ctx.sent))
		for _, m := range ctx.sent {
			dp := e.partition(m.Dst)
			if comb != nil {
				if i, ok := res.combIdx[m.Dst]; ok {
					om := &res.outbox[dp][i]
					om.Val = comb(om.Val, m.Val)
					res.combinedSender++
					continue
				}
				res.combIdx[m.Dst] = int32(len(res.outbox[dp]))
			}
			res.outbox[dp] = append(res.outbox[dp], OutMessage{Src: v, Dst: m.Dst, Val: m.Val})
		}
		res.computed = append(res.computed, v)
		if observing {
			rec := VertexRecord{
				ID:         v,
				Superstep:  ss,
				PrevActive: int(e.lastActive[v]),
				OldValue:   old,
				NewValue:   e.values[v],
				Emitted:    ctx.emitted,
			}
			rec.Sent = append([]SentMessage(nil), ctx.sent...)
			rec.Received = append([]IncomingMessage(nil), msgs...)
			res.records = append(res.records, rec)
		}
		return true
	}

	inbox := e.inboxes[p]
	for _, v := range ids {
		// An expired per-partition deadline stops the attempt between
		// vertices so a genuinely slow partition cancels promptly, not just
		// ones blocked inside a fault site. Parent cancellation is excluded:
		// the in-flight superstep finishes (compute is fast) and the
		// superstep-start check exits with a consistent final checkpoint.
		if actx.Err() != nil && e.runCtx.Err() == nil {
			res.crash = &CrashError{Vertex: v, Superstep: ss,
				Err: fmt.Errorf("partition %d attempt canceled: %w", p, actx.Err())}
			return
		}
		if !compute(v, inbox[v]) {
			return
		}
	}
}
