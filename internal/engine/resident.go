// Worker-resident state runtime (PR 9): the master-side half of the delta
// exchange protocol. With a StatefulTransport, partition state lives on the
// workers across supersteps — the master ships only dirty-vertex deltas and
// control metadata, workers route outbox fragments directly to the peers
// that own the destination partitions, and the delivery barrier becomes one
// Deliver round that returns per-partition accounting and next-active sets
// instead of the messages themselves.
//
// Failure handling composes with the PR 8 recovery ladder. Worker state is
// soft: everything a worker holds is a deterministic function of the last
// checkpoint (or the initial values) and the supersteps since. When a worker
// dies, the failover target answers the next delta request with a state
// miss and gets a full seed; when a delivery round is lost with a worker,
// the master re-hydrates the partition from the newest checkpoint blob
// (existing codec, via restoreCore) plus a deterministic replay of the
// supersteps since, on a private scratch engine. Replayed state is
// bit-identical to what the worker held — same program, graph, combiner,
// and association order — so runs keep their bit-identity guarantee across
// kills, reassignments, and pin-local fallbacks, with capture fully
// preserved (records always travel in exec replies).
package engine

import (
	"fmt"
	"path/filepath"
	"sort"

	"ariadne/internal/obs"
	"ariadne/internal/value"
)

// residentDeliver is the delivery barrier of a resident-state superstep.
// Destination partitions fall into three classes: master-resident (pinned
// before this superstep) columns fold locally via deliverColumn, exactly as
// the sharded barrier would; worker-resident partitions fold on their
// owning workers through one Deliver round (the master contributes only the
// columns of its own pinned partitions); and partitions that lost their
// state mid-superstep — pinned during compute, or whose worker died before
// the round — are re-hydrated by replay. Accounting (delivered, combined,
// max shard) is identical in all three classes, so the run's stats stay
// bit-identical to a local execution.
func (e *Engine) residentDeliver(ss int, combiner func(a, b value.Value) value.Value, results []partResult) (delivered, combined, maxShard int64, err error) {
	// The per-source-partition fan-out counts, from the workers' DstCounts
	// for resident results and the local outbox columns otherwise.
	counts := make([][]int64, e.nParts)
	for sp := range results {
		if results[sp].residentRemote {
			counts[sp] = results[sp].dstCounts
		} else {
			row := make([]int64, e.nParts)
			for dp := range results[sp].outbox {
				row[dp] = int64(len(results[sp].outbox[dp]))
			}
			counts[sp] = row
		}
	}

	perDP := make([]int64, e.nParts)
	var workerParts []int
	for dp := 0; dp < e.nParts; dp++ {
		if !e.localPinned[dp].Load() {
			workerParts = append(workerParts, dp)
			continue
		}
		if e.pinnedAtSS[dp] == ss {
			// Pinned mid-superstep: the remote fragments for dp were routed
			// toward a worker that no longer owns it (or died); rebuild the
			// inbox by replay and install it master-side.
			d, c, rerr := e.replayDeliver(ss, dp, counts)
			if rerr != nil {
				return 0, 0, 0, rerr
			}
			perDP[dp] = d
			delivered += d
			combined += c
			continue
		}
		d, c := e.deliverColumn(dp, combiner, results)
		perDP[dp] = d
		delivered += d
		combined += c
	}

	if len(workerParts) > 0 {
		dreq := &DeliverRequest{
			Superstep: ss,
			Combine:   combiner != nil,
			Parts:     workerParts,
			Expected:  make([][]int64, len(workerParts)),
		}
		dreq.MasterFrags = make([][][]OutMessage, len(workerParts))
		for i, dp := range workerParts {
			exp := make([]int64, e.nParts)
			mf := make([][]OutMessage, e.nParts)
			for sp := range results {
				exp[sp] = counts[sp][dp]
				if exp[sp] <= 0 || dp >= len(results[sp].outbox) {
					continue
				}
				// Forward any complete column the master holds: pinned
				// sources (workers never saw these fragments) and resident
				// sources whose peer send failed — the worker keeps the
				// column in its exec reply precisely so the master can relay
				// it here instead of forcing a replay.
				col := results[sp].outbox[dp]
				if int64(len(col)) != exp[sp] {
					continue
				}
				mf[sp] = append([]OutMessage(nil), col...)
			}
			dreq.Expected[i] = exp
			dreq.MasterFrags[i] = mf
		}
		if m := e.cfg.Metrics; m.SpansEnabled() {
			dreq.TraceID = m.SpanTraceID()
			dreq.ParentSpan = m.NewSpanID()
		}
		dres, derr := e.stateful.Deliver(e.runCtx, dreq)
		for i, dp := range workerParts {
			var part *DeliverPart
			if derr == nil && dres != nil && i < len(dres.Parts) && dres.Parts[i].OK {
				part = &dres.Parts[i]
			}
			if part == nil {
				d, c, rerr := e.replayDeliver(ss, dp, counts)
				if rerr != nil {
					return 0, 0, 0, rerr
				}
				perDP[dp] = d
				delivered += d
				combined += c
				continue
			}
			perDP[dp] = part.Delivered
			delivered += part.Delivered
			combined += part.Combined
			e.residentActive[dp] = part.Dsts
		}
	}

	for dp := range perDP {
		if perDP[dp] > maxShard {
			maxShard = perDP[dp]
		}
	}
	return delivered, combined, maxShard, nil
}

// collectResident pulls every worker-resident partition's state entering
// superstep target back into the master's arrays (values and inboxes), for
// checkpoints and the final Values() read. Partitions no worker can serve
// are re-hydrated by replay. Afterwards the master's arrays are
// authoritative for target, which also makes subsequent seeds cheap.
func (e *Engine) collectResident(target int) error {
	if e.masterAuthSS == target {
		return nil // arrays already hold this exact frontier
	}
	var parts []int
	for p := 0; p < e.nParts; p++ {
		if !e.localPinned[p].Load() {
			parts = append(parts, p)
		}
	}
	if len(parts) > 0 {
		req := &DeliverRequest{Superstep: target, CollectOnly: true, Parts: parts}
		if m := e.cfg.Metrics; m.SpansEnabled() {
			req.TraceID = m.SpanTraceID()
			req.ParentSpan = m.NewSpanID()
		}
		res, err := e.stateful.Deliver(e.runCtx, req)
		for i, p := range parts {
			var part *DeliverPart
			if err == nil && res != nil && i < len(res.Parts) && res.Parts[i].OK {
				part = &res.Parts[i]
			}
			if part != nil && len(part.Values) == e.strideLen(p) {
				j := 0
				for v := p; v < e.g.NumVertices(); v += e.nParts {
					e.values[VertexID(v)] = part.Values[j]
					j++
				}
				inbox := make(map[VertexID][]IncomingMessage, len(part.Inbox))
				for _, en := range part.Inbox {
					inbox[en.Dst] = en.Msgs
				}
				e.inboxes[p] = inbox
				continue
			}
			vals, inbox, rerr := e.replayState(target, p)
			if rerr != nil {
				return fmt.Errorf("engine: collecting partition %d at superstep %d: %w", p, target, rerr)
			}
			j := 0
			for v := p; v < e.g.NumVertices(); v += e.nParts {
				e.values[VertexID(v)] = vals[j]
				j++
			}
			e.inboxes[p] = inbox
		}
	}
	e.masterAuthSS = target
	return nil
}

// strideLen is the number of vertices partition p owns.
func (e *Engine) strideLen(p int) int {
	n := e.g.NumVertices()
	return (n - p + e.nParts - 1) / e.nParts
}

// seedLocalFromReplay installs partition p's exact state entering superstep
// ss into the master's arrays before a pin-local fallback executes it
// in-process: stride values and the superstep's inbox, from the replay
// engine (the master's last-active marks are already exact). Also records
// the mid-superstep pin so this superstep's delivery re-hydrates the
// partition's incoming fragments, which died with the workers.
func (e *Engine) seedLocalFromReplay(p, ss int) error {
	e.pinnedAtSS[p] = ss
	if e.masterAuthSS == ss {
		return nil // the arrays already hold this partition's exact state
	}
	vals, inbox, err := e.replayState(ss, p)
	if err != nil {
		return err
	}
	j := 0
	for v := p; v < e.g.NumVertices(); v += e.nParts {
		e.values[VertexID(v)] = vals[j]
		j++
	}
	e.inboxes[p] = inbox
	return nil
}

// replayDeliver recovers destination partition dp's delivery outcome for
// superstep ss after its fragments were lost (worker death, or a pin-local
// fallback mid-superstep): the replay engine advances through ss, its inbox
// for dp is the exact fold the worker would have produced, and accounting
// follows from the fan-out counts (total arrivals = delivered + combined).
// For a pinned partition the inbox installs master-side; for a still-remote
// one only the next-active set is recorded — the worker re-seeds on its
// next state miss from the same replay.
func (e *Engine) replayDeliver(ss, dp int, counts [][]int64) (delivered, combined int64, err error) {
	e.cfg.Metrics.Tracef(obs.Warn, "transport", ss,
		"partition %d delivery lost with its worker; re-hydrating from checkpoint + replay", dp)
	_, inbox, err := e.replayState(ss+1, dp)
	if err != nil {
		return 0, 0, err
	}
	var total int64
	for sp := range counts {
		total += counts[sp][dp]
	}
	for _, msgs := range inbox {
		delivered += int64(len(msgs))
	}
	combined = total - delivered
	if e.localPinned[dp].Load() {
		e.inboxes[dp] = inbox
	} else {
		act := make([]VertexID, 0, len(inbox))
		for v := range inbox {
			act = append(act, v)
		}
		sort.Slice(act, func(i, j int) bool { return act[i] < act[j] })
		e.residentActive[dp] = act
	}
	return delivered, combined, nil
}

// replayState returns partition p's exact state entering superstep target —
// stride-order values and a private copy of its inbox — from the replay
// engine, advancing it as needed. Safe from concurrent partition
// goroutines.
func (e *Engine) replayState(target, p int) ([]value.Value, map[VertexID][]IncomingMessage, error) {
	e.replayMu.Lock()
	defer e.replayMu.Unlock()
	s, err := e.rehydrate(target)
	if err != nil {
		return nil, nil, err
	}
	vals := make([]value.Value, 0, e.strideLen(p))
	for v := p; v < e.g.NumVertices(); v += e.nParts {
		vals = append(vals, s.values[VertexID(v)])
	}
	inbox := make(map[VertexID][]IncomingMessage, len(s.inboxes[p]))
	for v, msgs := range s.inboxes[p] {
		inbox[v] = append([]IncomingMessage(nil), msgs...)
	}
	return vals, inbox, nil
}

// rehydrate advances the private replay engine to "entering superstep
// target", building it on first use: seeded from the newest readable
// checkpoint at or before target when checkpointing is configured (the
// existing blob codec, minus observer state), else replayed from superstep
// 0. The scratch engine runs the same graph, program, partition count,
// effective combiner, and forced-activation schedule as the live run — and
// no transport, observers, faults, or supervision — so each superstep it
// replays is bit-identical to what the lost worker computed. Caller holds
// replayMu.
func (e *Engine) rehydrate(target int) (*Engine, error) {
	if e.replay != nil && e.replaySS > target {
		e.replay = nil // target rewound past the scratch frontier; rebuild
	}
	if e.replay == nil {
		scratch, err := New(e.g, e.prog, Config{
			Partitions: e.nParts,
			Combiner:   e.effComb,
			ActiveAt:   e.cfg.ActiveAt,
		})
		if err != nil {
			return nil, fmt.Errorf("engine: building replay engine: %w", err)
		}
		e.replaySS = 0
		if ck := e.cfg.Checkpoint; ck != nil && ck.Dir != "" {
			if cp := newestCheckpointAtOrBefore(ck.Dir, target); cp != nil {
				if rerr := scratch.restoreCore(cp); rerr == nil {
					e.replaySS = cp.resumeSS
				}
			}
		}
		e.replay = scratch
	}
	if e.replaySS < target {
		s := e.replay
		s.cfg.MaxSupersteps = target
		s.startSS = e.replaySS
		if _, err := s.Run(); err != nil {
			e.replay = nil
			return nil, fmt.Errorf("engine: re-hydration replay to superstep %d: %w", target, err)
		}
		e.replaySS = target
	}
	return e.replay, nil
}

// newestCheckpointAtOrBefore loads the newest readable checkpoint in dir
// whose resume superstep does not exceed target, or nil when none
// qualifies. Corrupt or too-new entries fall through to older ones, same as
// Resume.
func newestCheckpointAtOrBefore(dir string, target int) *checkpointData {
	names, err := readManifest(dir)
	if err != nil {
		return nil
	}
	for i := len(names) - 1; i >= 0; i-- {
		cp, err := loadCheckpoint(filepath.Join(dir, names[i]))
		if err == nil && cp.resumeSS <= target {
			return cp
		}
	}
	return nil
}
