package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/value"
)

// floodProg is a deliberately message-dominated program: every vertex sums
// its inbox and re-broadcasts to all out-neighbors every superstep. Compute
// is a few float adds, so the run time is the barrier — exactly the phase
// BenchmarkBarrier isolates.
type floodProg struct{}

func (floodProg) InitialValue(_ *graph.Graph, v VertexID) value.Value {
	return value.NewFloat(float64(v%7) + 1)
}

func (floodProg) Compute(ctx *Context, msgs []IncomingMessage) error {
	sum := ctx.Value().Float()
	for _, m := range msgs {
		sum += m.Val.Float()
	}
	ctx.SetValue(value.NewFloat(sum))
	ctx.SendToAllNeighbors(value.NewFloat(sum * 0.25))
	return nil
}

func benchGraph(b *testing.B, n, deg int) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	edges := make([]graph.Edge, 0, n*deg)
	for v := 0; v < n; v++ {
		for d := 0; d < deg; d++ {
			edges = append(edges, graph.Edge{
				Src: VertexID(v), Dst: VertexID(rng.Intn(n)), Weight: 1,
			})
		}
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkBarrier compares the seed sequential superstep barrier against
// the sharded parallel one at 8 partitions, with and without a combiner.
// The parallel/sequential time ratio is the regression metric archived by
// `make bench-micro` — it is hardware-independent, unlike absolute ns/op.
func BenchmarkBarrier(b *testing.B) {
	const (
		nVertices  = 10000
		degree     = 8
		partitions = 8
		supersteps = 8
	)
	g := benchGraph(b, nVertices, degree)
	sum := func(a, v value.Value) value.Value {
		return value.NewFloat(a.Float() + v.Float())
	}
	for _, mode := range []struct {
		name string
		seq  bool
	}{{"sequential", true}, {"parallel", false}} {
		for _, comb := range []struct {
			name string
			fn   func(a, v value.Value) value.Value
		}{{"nocombine", nil}, {"combine", sum}} {
			b.Run(fmt.Sprintf("%s/%s", mode.name, comb.name), func(b *testing.B) {
				b.ReportAllocs()
				var sent, barrierNS int64
				for i := 0; i < b.N; i++ {
					m := obs.New()
					e, err := New(g, floodProg{}, Config{
						Partitions:        partitions,
						MaxSupersteps:     supersteps,
						Combiner:          comb.fn,
						SequentialBarrier: mode.seq,
						Metrics:           m,
					})
					if err != nil {
						b.Fatal(err)
					}
					stats, err := e.Run()
					if err != nil {
						b.Fatal(err)
					}
					sent = stats.MessagesSent
					for _, p := range m.Profiles() {
						barrierNS += p.BarrierNS
					}
				}
				b.ReportMetric(float64(sent)*float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
				b.ReportMetric(float64(barrierNS)/float64(b.N), "barrier-ns/op")
			})
		}
	}
}
