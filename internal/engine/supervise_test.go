package engine

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"ariadne/internal/fault"
	"ariadne/internal/graph"
	"ariadne/internal/supervise"
	"ariadne/internal/value"
)

func TestPartitionIndexNonNegative(t *testing.T) {
	g := chainGraph(t, 4)
	for _, parts := range []int{1, 2, 3, 7} {
		e, err := New(g, minProg{}, Config{Partitions: parts})
		if err != nil {
			t.Fatal(err)
		}
		if e.Partitions() != parts {
			t.Fatalf("Partitions = %d, want %d", e.Partitions(), parts)
		}
		// High-bit vertex IDs must hash to a valid partition: int(v) on a
		// 32-bit platform is negative for IDs above MaxInt32, and a negative
		// modulus would index out of bounds.
		for _, v := range []VertexID{0, 1, math.MaxInt32, math.MaxInt32 + 1, math.MaxUint32} {
			p := e.PartitionOf(v)
			if p < 0 || p >= parts {
				t.Fatalf("PartitionOf(%d) with %d partitions = %d, out of range", v, parts, p)
			}
			if want := int(uint64(v) % uint64(parts)); p != want {
				t.Fatalf("PartitionOf(%d) = %d, want %d", v, p, want)
			}
		}
	}
}

// countingProg wraps a Program and records Compute invocations per
// (superstep, vertex), so tests can prove which partitions re-executed.
type countingProg struct {
	inner Program
	mu    sync.Mutex
	calls map[int]map[VertexID]int // superstep -> vertex -> computes
}

func newCountingProg(inner Program) *countingProg {
	return &countingProg{inner: inner, calls: map[int]map[VertexID]int{}}
}

func (p *countingProg) InitialValue(g *graph.Graph, v VertexID) value.Value {
	return p.inner.InitialValue(g, v)
}

func (p *countingProg) Compute(ctx *Context, msgs []IncomingMessage) error {
	p.mu.Lock()
	m := p.calls[ctx.Superstep()]
	if m == nil {
		m = map[VertexID]int{}
		p.calls[ctx.Superstep()] = m
	}
	m[ctx.ID()]++
	p.mu.Unlock()
	return p.inner.Compute(ctx, msgs)
}

func sameAggregates(t *testing.T, got, want AggregatorReader, names ...string) {
	t.Helper()
	for _, name := range names {
		g, gok := got.Float(name)
		w, wok := want.Float(name)
		if gok != wok || g != w {
			t.Fatalf("aggregator %q = %v (%v), want %v (%v)", name, g, gok, w, wok)
		}
	}
}

// TestSupervisedPanicDifferential is the headline differential: an injected
// partition panic at superstep N completes with the same analytic result
// (vertex values and aggregators) as the fault-free run, and only the failed
// partition re-executes.
func TestSupervisedPanicDifferential(t *testing.T) {
	const n, parts, faultSS, faultPart = 12, 3, 3, 1
	g := chainGraph(t, n)
	base, err := New(g, aggCheckProg{}, Config{MaxSupersteps: 8, Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Run(); err != nil {
		t.Fatal(err)
	}

	prog := newCountingProg(aggCheckProg{})
	inj := fault.NewInjector(fault.Matrix(faultPart, faultSS, 0, 0)["panic"]...)
	e, err := New(g, prog, Config{
		MaxSupersteps: 8,
		Partitions:    parts,
		Fault:         inj,
		Supervise:     &supervise.Config{MaxRetries: 2, Backoff: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if err != nil {
		t.Fatalf("supervised run should recover from the injected panic: %v", err)
	}
	sameValues(t, e.Values(), base.Values())
	sameAggregates(t, e.Aggregated(), base.Aggregated(), "sum")
	if stats.PartitionRetries < 1 {
		t.Errorf("PartitionRetries = %d, want >= 1", stats.PartitionRetries)
	}
	if inj.Fired() != 1 {
		t.Errorf("injector fired %d times, want 1", inj.Fired())
	}

	// Partition-scoped recovery: at the faulted superstep, vertices owned by
	// other partitions computed exactly once — they were not re-executed.
	prog.mu.Lock()
	defer prog.mu.Unlock()
	retried := false
	for v, c := range prog.calls[faultSS] {
		switch p := e.PartitionOf(v); {
		case p != faultPart && c != 1:
			t.Errorf("vertex %d (partition %d) computed %d times at ss %d, want 1", v, p, c, faultSS)
		case p == faultPart && c > 1:
			retried = true
		}
	}
	_ = retried // the panic fires before the first Compute, so the failed
	// attempt may have computed zero vertices; PartitionRetries above is the
	// retry witness.
}

// TestSupervisedHangRecovery drives the hung-worker scenario: an injected
// hang blocks until the per-partition deadline cancels the attempt, and the
// retry completes the superstep with a fault-free result.
func TestSupervisedHangRecovery(t *testing.T) {
	const n, parts = 12, 3
	g := chainGraph(t, n)
	base, err := New(g, minProg{}, Config{Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Run(); err != nil {
		t.Fatal(err)
	}

	// minProg on a chain activates exactly vertex ss at superstep ss, and
	// vertex 2 hashes to partition 2 of 3 — so the hang targets a partition
	// that really runs.
	inj := fault.NewInjector(fault.Matrix(2, 2, 0, 0)["hang"]...)
	e, err := New(g, minProg{}, Config{
		Partitions: parts,
		Fault:      inj,
		Supervise: &supervise.Config{
			Deadline:   20 * time.Millisecond,
			MaxRetries: 2,
			Backoff:    time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if err != nil {
		t.Fatalf("supervised run should recover from the injected hang: %v", err)
	}
	sameValues(t, e.Values(), base.Values())
	if inj.Fired() != 1 {
		t.Fatalf("hang fired %d times, want 1", inj.Fired())
	}
	if stats.DeadlineHits < 1 {
		t.Errorf("DeadlineHits = %d, want >= 1", stats.DeadlineHits)
	}
	if stats.PartitionRetries < 1 {
		t.Errorf("PartitionRetries = %d, want >= 1", stats.PartitionRetries)
	}
}

// TestSupervisedDelayTolerated: a pure slowdown needs no retry — the
// partition is slow, not failed, and the analytic result is unaffected.
func TestSupervisedDelayTolerated(t *testing.T) {
	g := chainGraph(t, 8)
	base, _ := New(g, minProg{}, Config{Partitions: 2})
	if _, err := base.Run(); err != nil {
		t.Fatal(err)
	}
	// Vertex 1 (the one active at superstep 1) hashes to partition 1 of 2.
	inj := fault.NewInjector(fault.Matrix(1, 1, 10*time.Millisecond, 0)["delay"]...)
	e, _ := New(g, minProg{}, Config{
		Partitions: 2,
		Fault:      inj,
		Supervise:  &supervise.Config{MaxRetries: 2, Backoff: time.Microsecond},
	})
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, e.Values(), base.Values())
	if inj.Fired() != 1 {
		t.Fatalf("delay fired %d times, want 1", inj.Fired())
	}
	if stats.PartitionRetries != 0 {
		t.Errorf("PartitionRetries = %d for a pure delay, want 0", stats.PartitionRetries)
	}
}

func TestSupervisedRetriesExhausted(t *testing.T) {
	g := chainGraph(t, 8)
	// More consecutive panics than MaxRetries allows: the run still fails,
	// with the culprit surfaced.
	inj := fault.NewInjector(fault.Rule{
		Site: fault.SiteCompute, Superstep: 2, Partition: 0, Vertex: -1, Panic: true, Times: 10,
	})
	e, _ := New(g, minProg{}, Config{
		Partitions: 2,
		Fault:      inj,
		Supervise:  &supervise.Config{MaxRetries: 2, Backoff: time.Microsecond},
	})
	stats, err := e.Run()
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError after exhausted retries, got %v", err)
	}
	if ce.Superstep != 2 {
		t.Errorf("crash superstep = %d, want 2", ce.Superstep)
	}
	if !stats.Aborted {
		t.Error("stats should mark aborted")
	}
	if inj.Fired() != 3 { // initial attempt + 2 retries
		t.Errorf("attempts = %d, want 3", inj.Fired())
	}
}

// TestSupervisionNoFaultsBitIdentical: supervision must be invisible when
// nothing fails — same values, same aggregators, zero supervision events.
func TestSupervisionNoFaultsBitIdentical(t *testing.T) {
	g := chainGraph(t, 12)
	base, _ := New(g, aggCheckProg{}, Config{MaxSupersteps: 6, Partitions: 3})
	if _, err := base.Run(); err != nil {
		t.Fatal(err)
	}
	e, _ := New(g, aggCheckProg{}, Config{
		MaxSupersteps: 6,
		Partitions:    3,
		Supervise:     &supervise.Config{AdaptiveDeadline: true},
	})
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, e.Values(), base.Values())
	sameAggregates(t, e.Aggregated(), base.Aggregated(), "sum")
	if stats.PartitionRetries != 0 || stats.DeadlineHits != 0 {
		t.Errorf("supervision events on a clean run: retries=%d deadlineHits=%d",
			stats.PartitionRetries, stats.DeadlineHits)
	}
}

// TestCancelWritesFinalCheckpoint: satellite for SIGINT handling — a
// cancelled run writes a final checkpoint at the barrier it stops at, even
// off the periodic interval, and resuming from it reproduces the baseline.
func TestCancelWritesFinalCheckpoint(t *testing.T) {
	const n = 12
	baseline := runToEnd(t, n, Config{Partitions: 2})

	dir := t.TempDir()
	g := chainGraph(t, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		Partitions: 2,
		Context:    ctx,
		// Interval 100: no periodic checkpoint would ever fire; only the
		// final cancel-time checkpoint can exist.
		Checkpoint: &CheckpointConfig{Dir: dir, Interval: 100},
		Observers:  []Observer{&cancelObserver{cancel: cancel, at: 3}},
	}
	e, err := New(g, minProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Supersteps != 4 {
		t.Errorf("supersteps = %d, want 4 (cancelled at the ss-3 barrier)", stats.Supersteps)
	}
	if _, err := LatestCheckpoint(dir); err != nil {
		t.Fatalf("no final checkpoint after cancellation: %v", err)
	}

	cfg.Context = nil
	// Resume needs the same observer set (state is re-matched by position);
	// this instance just never cancels.
	cfg.Observers = []Observer{&cancelObserver{cancel: func() {}, at: -1}}
	re, err := Resume(g, minProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.ResumedFrom() != 4 {
		t.Errorf("ResumedFrom = %d, want 4", re.ResumedFrom())
	}
	if _, err := re.Run(); err != nil {
		t.Fatal(err)
	}
	sameValues(t, re.Values(), baseline)
}

// TestCheckpointRetentionPrunes: the Keep bound holds the directory to the
// N newest checkpoints and the manifest stays consistent.
func TestCheckpointRetentionPrunes(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Checkpoint: &CheckpointConfig{Dir: dir, Interval: 1, Keep: 3},
	}
	e, err := New(chainGraph(t, 12), minProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	names, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("manifest lists %d checkpoints, want 3 (Keep)", len(names))
	}
	// Resume still works from the retained window.
	re, err := Resume(chainGraph(t, 12), minProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.ResumedFrom() == 0 {
		t.Error("resume should restart from a retained checkpoint")
	}
}

// TestSupervisedResumeAcrossCrash: supervision and checkpointing compose —
// retries are exhausted, the run crashes, and a supervised Resume finishes
// with the baseline result while the supervision totals survive restore.
func TestSupervisedResumeAcrossCrash(t *testing.T) {
	const n = 12
	baseline := runToEnd(t, n, Config{Partitions: 2})

	dir := t.TempDir()
	g := chainGraph(t, n)
	cfg := Config{
		Partitions: 2,
		Checkpoint: &CheckpointConfig{Dir: dir, Interval: 2},
		Supervise:  &supervise.Config{MaxRetries: 1, Backoff: time.Microsecond},
		Fault: fault.NewInjector(fault.Rule{
			Site: fault.SiteCompute, Superstep: 5, Partition: -1, Vertex: -1, Panic: true, Times: 10,
		}),
	}
	e, _ := New(g, minProg{}, cfg)
	if _, err := e.Run(); err == nil {
		t.Fatal("expected the injected crash to exhaust retries")
	}
	if e.Stats().PartitionRetries == 0 {
		t.Error("crashing run should have recorded retries")
	}

	cfg.Fault = nil
	re, err := Resume(g, minProg{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.Run(); err != nil {
		t.Fatal(err)
	}
	sameValues(t, re.Values(), baseline)
}
