package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// echoProg sends a deterministic pseudo-random number of messages per
// vertex per superstep, tagging each with (src, superstep), and records
// what it receives. It exercises the BSP delivery contract.
type echoProg struct {
	rounds int
}

func (echoProg) InitialValue(_ *graph.Graph, _ VertexID) value.Value {
	return value.NewInt(0)
}

func (p echoProg) Compute(ctx *Context, msgs []IncomingMessage) error {
	for _, m := range msgs {
		// Message payload = src*1e6 + sentAtSuperstep. BSP: it must have
		// been sent exactly in the previous superstep.
		sentAt := m.Val.Int() % 1000000
		if int(sentAt) != ctx.Superstep()-1 {
			return fmt.Errorf("message sent at %d delivered at %d", sentAt, ctx.Superstep())
		}
		src := m.Val.Int() / 1000000
		if src != int64(m.Src) {
			return fmt.Errorf("message src %d mislabeled as %d", src, m.Src)
		}
	}
	if ctx.Superstep() < p.rounds {
		dst, _ := ctx.OutNeighbors()
		// Deterministic subset: send to neighbors whose id parity matches
		// the superstep's.
		for _, d := range dst {
			if int(d)%2 == ctx.Superstep()%2 {
				ctx.SendMessage(d, value.NewInt(int64(ctx.ID())*1000000+int64(ctx.Superstep())))
			}
		}
	}
	return nil
}

func TestBSPDeliveryContract(t *testing.T) {
	for _, parts := range []int{1, 2, 5} {
		g, err := gen.RMAT(gen.DefaultRMAT(7, 5, 77))
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(g, echoProg{rounds: 6}, Config{Partitions: parts, MaxSupersteps: 8})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
	}
}

// countingObserver tallies messages seen by records to verify exactly-once
// observation of sends and receives.
type countingObserver struct {
	sent, recv int64
}

func (o *countingObserver) NeedsRawMessages() bool { return true }
func (o *countingObserver) ObserveSuperstep(v *SuperstepView) error {
	for _, r := range v.Records {
		o.sent += int64(len(r.Sent))
		o.recv += int64(len(r.Received))
	}
	return nil
}
func (o *countingObserver) Finish(int) error { return nil }

func TestEveryMessageObservedExactlyOnce(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 4, 51))
	if err != nil {
		t.Fatal(err)
	}
	obs := &countingObserver{}
	e, err := New(g, echoProg{rounds: 5}, Config{Partitions: 3, MaxSupersteps: 7, Observers: []Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if obs.sent != stats.MessagesSent {
		t.Errorf("observed %d sends, engine counted %d", obs.sent, stats.MessagesSent)
	}
	// Every sent message is delivered in the next superstep; the run ends
	// only after a quiescent superstep, so sends == receives.
	if obs.recv != obs.sent {
		t.Errorf("observed %d receives for %d sends", obs.recv, obs.sent)
	}
}

func TestDeterminismAcrossPartitionsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(5))}
	f := func(seed int64) bool {
		g, err := gen.RMAT(gen.DefaultRMAT(6, 4, seed%100))
		if err != nil {
			return false
		}
		var ref []value.Value
		for _, parts := range []int{1, 4} {
			e, err := New(g, echoProg{rounds: 4}, Config{Partitions: parts, MaxSupersteps: 6})
			if err != nil {
				return false
			}
			if _, err := e.Run(); err != nil {
				return false
			}
			if ref == nil {
				ref = append([]value.Value(nil), e.Values()...)
				continue
			}
			for i := range ref {
				if !ref[i].Equal(e.Values()[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestActiveAtForcesComputation(t *testing.T) {
	g, err := graph.NewFromEdges(4, nil) // no edges, no messages
	if err != nil {
		t.Fatal(err)
	}
	var computed []int
	prog := recorderProg{hit: &computed}
	e, err := New(g, prog, Config{
		MaxSupersteps: 4,
		ActiveAt: func(ss int) []VertexID {
			if ss >= 1 && ss <= 2 {
				return []VertexID{2}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// ss0: all 4 compute; ss1, ss2: forced vertex 2; ss3: ActiveAt empty
	// and no messages -> stop.
	if stats.Supersteps != 3 {
		t.Errorf("supersteps = %d, want 3", stats.Supersteps)
	}
	want := 4 + 1 + 1
	if len(computed) != want {
		t.Errorf("computed %d vertex steps, want %d", len(computed), want)
	}
}

type recorderProg struct{ hit *[]int }

func (recorderProg) InitialValue(_ *graph.Graph, _ VertexID) value.Value { return value.NewInt(0) }
func (p recorderProg) Compute(ctx *Context, _ []IncomingMessage) error {
	*p.hit = append(*p.hit, int(ctx.ID()))
	return nil
}

func TestContextAccessors(t *testing.T) {
	g, err := graph.NewFromEdges(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 2}, {Src: 2, Dst: 1, Weight: 3}})
	if err != nil {
		t.Fatal(err)
	}
	g.BuildInEdges()
	var sawInDeg, sawOutDeg, sawN int
	prog := probeProg{f: func(ctx *Context) {
		if ctx.ID() == 1 {
			sawInDeg = ctx.InDegree()
			sawOutDeg = ctx.OutDegree()
			sawN = ctx.NumVertices()
			if ctx.Graph() != g {
				panic("Graph() mismatch")
			}
			if ctx.Observing() {
				panic("no observers attached")
			}
		}
	}}
	e, err := New(g, prog, Config{MaxSupersteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sawInDeg != 2 || sawOutDeg != 0 || sawN != 3 {
		t.Errorf("accessors: in=%d out=%d n=%d", sawInDeg, sawOutDeg, sawN)
	}
}

type probeProg struct{ f func(*Context) }

func (probeProg) InitialValue(_ *graph.Graph, _ VertexID) value.Value { return value.NewInt(0) }
func (p probeProg) Compute(ctx *Context, _ []IncomingMessage) error {
	p.f(ctx)
	return nil
}

func TestDiscardSentMessages(t *testing.T) {
	g, err := graph.NewFromEdges(2, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	prog := probeProg{f: func(ctx *Context) {
		if ctx.Superstep() == 0 && ctx.ID() == 0 {
			ctx.SendToAllNeighbors(value.NewInt(1))
			ctx.DiscardSentMessages()
			ctx.SendMessage(1, value.NewInt(2))
		}
	}}
	obs := &countingObserver{}
	e, err := New(g, prog, Config{MaxSupersteps: 3, Observers: []Observer{obs}})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesSent != 1 {
		t.Errorf("messages sent = %d, want 1 (discard then resend)", stats.MessagesSent)
	}
}
