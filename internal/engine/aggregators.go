package engine

import "math"

// AggOp is a global aggregator reduction operator.
type AggOp uint8

// Supported aggregator reductions.
const (
	AggSum AggOp = iota
	AggMin
	AggMax
	AggCount
)

// AggregatorReader exposes the merged aggregator values of the previous
// superstep (Pregel semantics: values written during superstep i are
// readable during superstep i+1 and after the run).
type AggregatorReader interface {
	// Float returns the merged value of the named aggregator and whether it
	// exists.
	Float(name string) (float64, bool)
}

type aggCell struct {
	op  AggOp
	val float64
	n   int64
}

// aggregators implements per-partition partial aggregation merged at the
// superstep barrier, mirroring how Pregel workers reduce locally before the
// master combines. The parts slice is sized up front so each worker only
// ever touches its own entry (no locks, no append races).
type aggregators struct {
	parts   []map[string]aggCell // one map per partition, written without locks
	current map[string]float64   // merged values visible to readers
}

func newAggregators(nParts int) *aggregators {
	return &aggregators{
		parts:   make([]map[string]aggCell, nParts),
		current: map[string]float64{},
	}
}

func (a *aggregators) beginSuperstep() {
	for i := range a.parts {
		a.parts[i] = nil
	}
}

// resetPartition discards partition p's partial contributions for the
// superstep in flight — the aggregator half of partition-scoped recovery:
// a supervised re-execution must not double-count the failed attempt.
// Partition-local like add, so safe from p's worker goroutine.
func (a *aggregators) resetPartition(p int) {
	a.parts[p] = nil
}

func (a *aggregators) add(p int, name string, op AggOp, v float64) {
	if a.parts[p] == nil {
		a.parts[p] = map[string]aggCell{}
	}
	m := a.parts[p]
	c, ok := m[name]
	if !ok {
		c = aggCell{op: op, val: initial(op)}
	}
	c.val = reduce(op, c.val, v)
	c.n++
	m[name] = c
}

func (a *aggregators) endSuperstep() {
	merged := map[string]aggCell{}
	for _, m := range a.parts {
		for name, c := range m {
			g, ok := merged[name]
			if !ok {
				g = aggCell{op: c.op, val: initial(c.op)}
			}
			if c.op == AggCount {
				g.val += float64(c.n) // count reduces by summing per-partition counts
			} else {
				g.val = reduce(c.op, g.val, c.val)
			}
			g.n += c.n
			merged[name] = g
		}
	}
	a.current = map[string]float64{}
	for name, c := range merged {
		a.current[name] = c.val
	}
}

func initial(op AggOp) float64 {
	switch op {
	case AggMin:
		return math.Inf(1)
	case AggMax:
		return math.Inf(-1)
	default:
		return 0
	}
}

func reduce(op AggOp, acc, v float64) float64 {
	switch op {
	case AggMin:
		return math.Min(acc, v)
	case AggMax:
		return math.Max(acc, v)
	case AggCount:
		return acc // count ignores v; n tracks it
	default:
		return acc + v
	}
}

type aggReader map[string]float64

func (r aggReader) Float(name string) (float64, bool) {
	v, ok := r[name]
	return v, ok
}

func (a *aggregators) reader() AggregatorReader { return aggReader(a.current) }
