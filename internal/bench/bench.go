// Package bench regenerates the paper's evaluation (§6): every table and
// figure has a runner that executes the corresponding workloads on the
// scaled-down stand-in datasets and prints rows in the paper's shape.
// Absolute numbers differ from the paper's 7-node cluster — the shapes
// (who wins, rough factors, crossovers) are the reproduction target
// (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/value"
)

// Config controls experiment scale and output.
type Config struct {
	// SizeFactor scales the stand-in datasets; 0 is the default benchmark
	// size (2^8..2^11 vertices), each +1 doubles every dataset.
	SizeFactor int
	// Supersteps bounds PageRank iterations (default 20, as in the paper).
	Supersteps int
	// Repeat runs each timed configuration this many times and keeps the
	// trimmed mean (the paper uses 5 runs, trimmed); default 1.
	Repeat int
	// NaiveBudget bounds the naive mode's database bytes; beyond it the
	// run reports DNF like the paper's "Naive was not able to scale".
	// Default 256 MiB.
	NaiveBudget int64
	// Datasets restricts execution to the named datasets (nil = all).
	Datasets []string
	// Out receives the report (default os.Stdout).
	Out io.Writer
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

func (c Config) supersteps() int {
	if c.Supersteps <= 0 {
		return 20
	}
	return c.Supersteps
}

func (c Config) repeat() int {
	if c.Repeat <= 0 {
		return 1
	}
	return c.Repeat
}

func (c Config) naiveBudget() int64 {
	if c.NaiveBudget == 0 {
		return 256 << 20
	}
	return c.NaiveBudget
}

// webScaleOffset maps SizeFactor to gen.WebDatasets' scale parameter so
// that SizeFactor 0 yields 2^8..2^11 vertices.
const webScaleOffset = -4

// Runner executes experiments, caching generated datasets.
type Runner struct {
	cfg    Config
	graphs map[string]*graph.Graph
	undirs map[string]*graph.Graph
}

// NewRunner creates a Runner.
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg, graphs: map[string]*graph.Graph{}, undirs: map[string]*graph.Graph{}}
}

func (r *Runner) datasets() []gen.Dataset {
	all := gen.WebDatasets(r.cfg.SizeFactor + webScaleOffset)
	if len(r.cfg.Datasets) == 0 {
		return all
	}
	var out []gen.Dataset
	for _, want := range r.cfg.Datasets {
		for _, d := range all {
			if d.Name == want {
				out = append(out, d)
			}
		}
	}
	return out
}

func (r *Runner) graph(d gen.Dataset) (*graph.Graph, error) {
	if g, ok := r.graphs[d.Name]; ok {
		return g, nil
	}
	g, err := d.Build()
	if err != nil {
		return nil, err
	}
	g.BuildInEdges()
	r.graphs[d.Name] = g
	return g, nil
}

func (r *Runner) undirected(d gen.Dataset) (*graph.Graph, error) {
	if g, ok := r.undirs[d.Name]; ok {
		return g, nil
	}
	dg, err := r.graph(d)
	if err != nil {
		return nil, err
	}
	u := dg.Undirected()
	r.undirs[d.Name] = u
	return u, nil
}

// analyticSpec names one of the paper's analytics over one dataset.
type analyticSpec struct {
	name string
	prog func() ariadne.Program
	g    *graph.Graph
	opts []ariadne.Option
}

// analyticsFor builds the PageRank/SSSP/WCC specs for a dataset.
func (r *Runner) analyticsFor(d gen.Dataset) ([]analyticSpec, error) {
	g, err := r.graph(d)
	if err != nil {
		return nil, err
	}
	u, err := r.undirected(d)
	if err != nil {
		return nil, err
	}
	n := r.cfg.supersteps()
	return []analyticSpec{
		{
			name: "PageRank",
			prog: func() ariadne.Program { return &analytics.PageRank{Iterations: n} },
			g:    g,
			opts: []ariadne.Option{ariadne.WithMaxSupersteps(n + 1)},
		},
		{
			name: "SSSP",
			prog: func() ariadne.Program { return &analytics.SSSP{Source: 0} },
			g:    g,
		},
		{
			name: "WCC",
			prog: func() ariadne.Program { return analytics.WCC{} },
			g:    u,
		},
	}, nil
}

// timeRun measures one Run configuration with trimmed-mean repetition.
func (r *Runner) timeRun(g *graph.Graph, prog func() ariadne.Program, opts ...ariadne.Option) (time.Duration, *ariadne.Result, error) {
	times := make([]time.Duration, 0, r.cfg.repeat())
	var last *ariadne.Result
	for i := 0; i < r.cfg.repeat(); i++ {
		res, err := ariadne.Run(g, prog(), opts...)
		if err != nil {
			return 0, nil, err
		}
		times = append(times, res.Duration)
		last = res
	}
	return trimmedMean(times), last, nil
}

func trimmedMean(ts []time.Duration) time.Duration {
	if len(ts) <= 2 {
		var sum time.Duration
		for _, t := range ts {
			sum += t
		}
		return sum / time.Duration(len(ts))
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	ts = ts[1 : len(ts)-1]
	var sum time.Duration
	for _, t := range ts {
		sum += t
	}
	return sum / time.Duration(len(ts))
}

func overhead(t, baseline time.Duration) float64 {
	if baseline <= 0 {
		return math.NaN()
	}
	return float64(t) / float64(baseline)
}

func gbLike(bytes int64) string {
	switch {
	case bytes >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(bytes)/(1<<30))
	case bytes >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(bytes)/(1<<20))
	default:
		return fmt.Sprintf("%.1fKB", float64(bytes)/(1<<10))
	}
}

// medianFloat returns the median of vertex values (used by Tables 5 and 6).
func medianFloat(vals []value.Value, skipInf bool) float64 {
	fs := make([]float64, 0, len(vals))
	for _, v := range vals {
		f := v.Float()
		if skipInf && math.IsInf(f, 0) {
			continue
		}
		fs = append(fs, f)
	}
	if len(fs) == 0 {
		return math.NaN()
	}
	sort.Float64s(fs)
	return fs[len(fs)/2]
}

// lpRelativeError is the paper's normalized error: Lp(r0-r1)/Lp(r0), with
// non-finite entries (unreached SSSP vertices) skipped pairwise.
func lpRelativeError(r0, r1 []value.Value, p float64) float64 {
	var num, den float64
	for i := range r0 {
		a, b := r0[i].Float(), r1[i].Float()
		if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
			continue
		}
		num += math.Pow(math.Abs(a-b), p)
		den += math.Pow(math.Abs(a), p)
	}
	if den == 0 {
		return 0
	}
	return math.Pow(num, 1/p) / math.Pow(den, 1/p)
}

// labelDisagreement is the WCC analog of relative error: the fraction of
// vertices whose component label differs.
func labelDisagreement(r0, r1 []value.Value) float64 {
	if len(r0) == 0 {
		return 0
	}
	diff := 0
	for i := range r0 {
		if !r0[i].Equal(r1[i]) {
			diff++
		}
	}
	return float64(diff) / float64(len(r0))
}
