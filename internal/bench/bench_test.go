package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// tiny returns a runner over only the smallest dataset at minimum size, so
// the experiment logic is exercised quickly; the full sweep belongs to
// cmd/ariadne-bench and the root benchmarks.
func tiny(t *testing.T) (*Runner, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	return NewRunner(Config{
		SizeFactor: -1,
		Supersteps: 10,
		Datasets:   []string{"IN-04"},
		Out:        &buf,
	}), &buf
}

func TestTable2(t *testing.T) {
	r, buf := tiny(t)
	rows, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // IN-04 + ML-20
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Name != "IN-04" || rows[0].V == 0 || rows[0].AvgDegree < 10 {
		t.Errorf("IN-04 row = %+v", rows[0])
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("report missing header")
	}
}

func TestTable3And4Shapes(t *testing.T) {
	r, _ := tiny(t)
	full, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	cust, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, analytic := range []string{"PageRank", "SSSP", "WCC"} {
		// Paper shape: full provenance much larger than the input graph;
		// custom provenance below the full one and a fraction of the ratio.
		if full[0].Ratio[analytic] < 1.5 {
			t.Errorf("%s full ratio %.2f should exceed input", analytic, full[0].Ratio[analytic])
		}
		if cust[0].Bytes[analytic] >= full[0].Bytes[analytic] {
			t.Errorf("%s custom %d should be below full %d", analytic, cust[0].Bytes[analytic], full[0].Bytes[analytic])
		}
		// Table 4: lineage covers a large share of vertices.
		if cust[0].Coverage[analytic] < 0.5 {
			t.Errorf("%s lineage coverage %.2f too small", analytic, cust[0].Coverage[analytic])
		}
	}
	// PageRank touches every vertex every superstep: its provenance should
	// be the largest, as in Table 3.
	if full[0].Bytes["PageRank"] < full[0].Bytes["WCC"] {
		t.Errorf("PageRank provenance should exceed WCC's: %v", full[0].Bytes)
	}
}

func TestFig7Shape(t *testing.T) {
	r, _ := tiny(t)
	rows, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.FullX < row.CustomX*0.8 {
			t.Errorf("%s: full capture (%.2fx) should not be much cheaper than custom (%.2fx)", row.Analytic, row.FullX, row.CustomX)
		}
		if row.Baseline <= 0 {
			t.Errorf("%s: baseline not measured", row.Analytic)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	r, _ := tiny(t)
	rows, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // 1 (PR) + 2 (SSSP) + 2 (WCC)
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		// Paper shape: online cheapest, naive most expensive.
		if !row.NaiveDNF && row.OnlineX > row.NaiveX*1.5 {
			t.Errorf("%s/%s: online %.2fx should not dwarf naive %.2fx", row.Query, row.Analytic, row.OnlineX, row.NaiveX)
		}
		if math.IsNaN(row.OnlineX) || math.IsNaN(row.LayeredX) {
			t.Errorf("%s/%s: missing overheads", row.Query, row.Analytic)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	r, _ := tiny(t)
	rows, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 feature counts x 2 queries
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.OnlineX <= 0 || math.IsNaN(row.OnlineX) {
			t.Errorf("%s %s: overhead %v", row.Variant, row.Query, row.OnlineX)
		}
	}
}

func TestTables5And6Shapes(t *testing.T) {
	r, _ := tiny(t)
	t5, err := r.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5) != 1 {
		t.Fatalf("t5 rows = %d", len(t5))
	}
	// Optimized PageRank loses a little rank mass: MedianB <= MedianA, and
	// the relative error stays small.
	if t5[0].MedianB > t5[0].MedianA+1e-9 {
		t.Errorf("PageRank medians: B %.4f should be <= A %.4f", t5[0].MedianB, t5[0].MedianA)
	}
	if t5[0].Error > 0.3 {
		t.Errorf("PageRank relative error %.3f too large", t5[0].Error)
	}
	t6, err := r.Table6()
	if err != nil {
		t.Fatal(err)
	}
	// SSSP approximation can only lengthen paths: MedianB >= MedianA.
	if t6[0].MedianB < t6[0].MedianA-1e-9 {
		t.Errorf("SSSP medians: B %.4f should be >= A %.4f", t6[0].MedianB, t6[0].MedianA)
	}
	if t6[0].Error > 0.2 {
		t.Errorf("SSSP relative error %.3f too large", t6[0].Error)
	}
	wcc, err := r.Fig10WCC()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 0.9 label disagreement on its web crawls. The
	// effect depends on crawl-order ID locality dominating connectivity:
	// our scaled-down stand-ins are much denser (hub shortcuts repair the
	// suppressed updates), so here we only assert the measurement ran; the
	// deterministic demonstration of the unsafe optimization lives in
	// analytics.TestApproximateWCCUnsafe (chain topology), and the
	// discrepancy is recorded in EXPERIMENTS.md.
	if wcc[0].Error < 0 || wcc[0].Error > 1 {
		t.Errorf("WCC disagreement %.2f out of range", wcc[0].Error)
	}
}

func TestFig11And12Shapes(t *testing.T) {
	r, _ := tiny(t)
	f11, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(f11) != 3 {
		t.Fatalf("fig11 rows = %d", len(f11))
	}
	f12, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f12 {
		if row.TraceSize == 0 {
			t.Errorf("%s/%s: empty backward trace", row.Dataset, row.Analytic)
		}
		// Paper shape: custom-provenance tracing beats full-provenance tracing.
		if row.CustomX > row.FullX*1.2 {
			t.Errorf("%s/%s: custom %.2fx should not exceed full %.2fx", row.Dataset, row.Analytic, row.CustomX, row.FullX)
		}
	}
}

func TestALSCapture(t *testing.T) {
	r, _ := tiny(t)
	res, err := r.ALSCapture(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !res.FailedNoSpill {
		t.Error("ALS full capture should exceed the tight budget without spill")
	}
	if res.SpilledLayers == 0 {
		t.Error("ALS capture with spill should offload layers")
	}
}

func TestHelpers(t *testing.T) {
	if got := trimmedMean([]time.Duration{10, 100, 1000}); got != 100 {
		t.Errorf("trimmedMean = %v", got)
	}
	if got := trimmedMean([]time.Duration{10, 30}); got != 20 {
		t.Errorf("mean of two = %v", got)
	}
	if gbLike(2<<30) != "2.0GB" || gbLike(5<<20) != "5.0MB" || gbLike(512) != "0.5KB" {
		t.Errorf("gbLike wrong: %s %s %s", gbLike(2<<30), gbLike(5<<20), gbLike(512))
	}
	if !math.IsNaN(overhead(time.Second, 0)) {
		t.Error("overhead of zero baseline should be NaN")
	}
}
