package bench

import (
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/driver"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/provenance"
	"ariadne/internal/queries"
)

// --- Table 2: dataset characteristics ---

// Table2Row mirrors the paper's Table 2.
type Table2Row struct {
	Name        string
	V, E        int
	AvgDegree   float64
	AvgDiameter float64
}

// Table2 reports the stand-in datasets' characteristics.
func (r *Runner) Table2() ([]Table2Row, error) {
	fmt.Fprintf(r.cfg.out(), "\nTable 2: Dataset characteristics (stand-ins)\n%-8s %10s %12s %10s %12s\n", "Dataset", "|V|", "|E|", "AvgDeg", "AvgDiam")
	var rows []Table2Row
	for _, d := range r.datasets() {
		g, err := r.graph(d)
		if err != nil {
			return nil, err
		}
		st := graph.ComputeStats(g, 8, d.Seed)
		row := Table2Row{Name: d.Name, V: st.NumVertices, E: st.NumEdges, AvgDegree: st.AvgDegree, AvgDiameter: st.AvgDiameter}
		rows = append(rows, row)
		fmt.Fprintf(r.cfg.out(), "%-8s %10d %12d %10.2f %12.2f\n", row.Name, row.V, row.E, row.AvgDegree, row.AvgDiameter)
	}
	ml, err := gen.MLDataset(r.cfg.SizeFactor)
	if err != nil {
		return nil, err
	}
	st := graph.ComputeStats(ml.Graph, 0, 0)
	row := Table2Row{Name: "ML-20", V: st.NumVertices, E: st.NumEdges, AvgDegree: st.AvgDegree, AvgDiameter: 1}
	rows = append(rows, row)
	fmt.Fprintf(r.cfg.out(), "%-8s %10d %12d %10.2f %12.2f\n", row.Name, row.V, row.E, row.AvgDegree, row.AvgDiameter)
	return rows, nil
}

// --- Tables 3 & 4: provenance graph sizes ---

// SizeRow is one dataset row of Table 3 or 4.
type SizeRow struct {
	Dataset    string
	InputBytes int64
	// Bytes maps analytic name to captured provenance bytes.
	Bytes map[string]int64
	// Ratio maps analytic name to provenance/input size ratio.
	Ratio map[string]float64
	// Coverage maps analytic name to the fraction of input vertices in the
	// custom provenance (Table 4 reports >80%).
	Coverage map[string]float64
}

// Table3 captures the full provenance graph (Query 2) for every analytic
// and dataset and compares sizes against the input graph.
func (r *Runner) Table3() ([]SizeRow, error) {
	fmt.Fprintf(r.cfg.out(), "\nTable 3: Full provenance graph size vs input\n%-8s %10s %14s %14s %14s\n", "Dataset", "Input", "PageRank", "SSSP", "WCC")
	return r.sizeTable(false)
}

// Table4 captures the custom (forward-lineage, Query 3) provenance graph.
func (r *Runner) Table4() ([]SizeRow, error) {
	fmt.Fprintf(r.cfg.out(), "\nTable 4: Custom provenance graph size vs input (forward lineage)\n%-8s %10s %14s %14s %14s\n", "Dataset", "Input", "PageRank", "SSSP", "WCC")
	return r.sizeTable(true)
}

func (r *Runner) sizeTable(custom bool) ([]SizeRow, error) {
	var rows []SizeRow
	for _, d := range r.datasets() {
		specs, err := r.analyticsFor(d)
		if err != nil {
			return nil, err
		}
		row := SizeRow{Dataset: d.Name, Bytes: map[string]int64{}, Ratio: map[string]float64{}, Coverage: map[string]float64{}}
		row.InputBytes = specs[0].g.MemSize()
		for _, spec := range specs {
			def := queries.CaptureFull()
			if custom {
				// Paper: source vertex for SSSP, highest-degree for the rest.
				src := graph.VertexID(0)
				if spec.name != "SSSP" {
					src = graph.HighestDegreeVertex(spec.g)
				}
				def = queries.CaptureForwardLineage(src)
			}
			opts := append([]ariadne.Option{ariadne.WithCaptureQuery(def, provenance.StoreConfig{})}, spec.opts...)
			_, res, err := r.timeRun(spec.g, spec.prog, opts...)
			if err != nil {
				return nil, err
			}
			row.Bytes[spec.name] = res.Provenance.TotalBytes()
			row.Ratio[spec.name] = float64(res.Provenance.TotalBytes()) / float64(spec.g.MemSize())
			row.Coverage[spec.name] = float64(res.Provenance.DistinctVertices()) / float64(spec.g.NumVertices())
		}
		rows = append(rows, row)
		fmt.Fprintf(r.cfg.out(), "%-8s %10s %9s %.1fx %9s %.1fx %9s %.1fx\n",
			row.Dataset, gbLike(row.InputBytes),
			gbLike(row.Bytes["PageRank"]), row.Ratio["PageRank"],
			gbLike(row.Bytes["SSSP"]), row.Ratio["SSSP"],
			gbLike(row.Bytes["WCC"]), row.Ratio["WCC"])
	}
	return rows, nil
}

// --- Figure 7: capture runtime, full vs custom ---

// CaptureTimeRow is one (dataset, analytic) bar pair of Figure 7.
type CaptureTimeRow struct {
	Dataset, Analytic string
	Baseline          time.Duration
	FullX, CustomX    float64
}

// Fig7 measures the runtime overhead of full (Query 2) versus custom
// (Query 3) capture over the bare analytic.
func (r *Runner) Fig7() ([]CaptureTimeRow, error) {
	fmt.Fprintf(r.cfg.out(), "\nFigure 7: Capture runtime overhead (x baseline)\n%-8s %-9s %12s %8s %8s\n", "Dataset", "Analytic", "Baseline", "Full", "Custom")
	var rows []CaptureTimeRow
	for _, d := range r.datasets() {
		specs, err := r.analyticsFor(d)
		if err != nil {
			return nil, err
		}
		for _, spec := range specs {
			base, _, err := r.timeRun(spec.g, spec.prog, spec.opts...)
			if err != nil {
				return nil, err
			}
			fullT, _, err := r.timeRun(spec.g, spec.prog,
				append([]ariadne.Option{ariadne.WithCaptureQuery(queries.CaptureFull(), provenance.StoreConfig{})}, spec.opts...)...)
			if err != nil {
				return nil, err
			}
			src := graph.VertexID(0)
			if spec.name != "SSSP" {
				src = graph.HighestDegreeVertex(spec.g)
			}
			custT, _, err := r.timeRun(spec.g, spec.prog,
				append([]ariadne.Option{ariadne.WithCaptureQuery(queries.CaptureForwardLineage(src), provenance.StoreConfig{})}, spec.opts...)...)
			if err != nil {
				return nil, err
			}
			row := CaptureTimeRow{
				Dataset: d.Name, Analytic: spec.name, Baseline: base,
				FullX: overhead(fullT, base), CustomX: overhead(custT, base),
			}
			rows = append(rows, row)
			fmt.Fprintf(r.cfg.out(), "%-8s %-9s %12v %7.2fx %7.2fx\n", row.Dataset, row.Analytic, row.Baseline.Round(time.Millisecond), row.FullX, row.CustomX)
		}
	}
	return rows, nil
}

// --- Figures 8 and 11: query runtime across evaluation modes ---

// ModesRow is one bar group: a query on an analytic and dataset, with the
// overhead of each evaluation mode over the bare analytic.
type ModesRow struct {
	Query, Dataset, Analytic  string
	Baseline                  time.Duration
	OnlineX, LayeredX, NaiveX float64
	NaiveDNF                  bool
}

// monitoringQueries maps each analytic to its §6.2.1 monitoring queries.
func monitoringQueries(analytic string) []queries.Definition {
	switch analytic {
	case "PageRank":
		return []queries.Definition{queries.PageRankCheck()}
	default: // SSSP, WCC
		return []queries.Definition{queries.MonotoneCheck(), queries.SilentChange()}
	}
}

// Fig8 measures the execution-monitoring queries (Queries 4, 5, 6) under
// Online, Layered, and Naive evaluation.
func (r *Runner) Fig8() ([]ModesRow, error) {
	fmt.Fprintf(r.cfg.out(), "\nFigure 8: Execution monitoring queries (x baseline)\n%-22s %-8s %-9s %8s %8s %8s\n", "Query", "Dataset", "Analytic", "Online", "Layered", "Naive")
	queryPick := func(a string) []queries.Definition { return monitoringQueries(a) }
	return r.modesExperiment(queryPick)
}

// Fig11 measures the motivating apt query (Query 1) under all modes.
func (r *Runner) Fig11() ([]ModesRow, error) {
	fmt.Fprintf(r.cfg.out(), "\nFigure 11: apt query (Query 1) (x baseline)\n%-22s %-8s %-9s %8s %8s %8s\n", "Query", "Dataset", "Analytic", "Online", "Layered", "Naive")
	eps := map[string]float64{"PageRank": 0.01, "SSSP": 0.1, "WCC": 1}
	queryPick := func(a string) []queries.Definition {
		return []queries.Definition{queries.Apt(eps[a], nil)}
	}
	return r.modesExperiment(queryPick)
}

func (r *Runner) modesExperiment(queryPick func(analytic string) []queries.Definition) ([]ModesRow, error) {
	var rows []ModesRow
	for _, d := range r.datasets() {
		specs, err := r.analyticsFor(d)
		if err != nil {
			return nil, err
		}
		for _, spec := range specs {
			base, _, err := r.timeRun(spec.g, spec.prog, spec.opts...)
			if err != nil {
				return nil, err
			}
			// One full capture per (dataset, analytic), reused by the
			// offline modes of every query. Captured provenance goes to
			// disk (the HDFS stand-in): offline querying pays the cost of
			// reading it back, as in the paper; online querying never does.
			spillDir, err := os.MkdirTemp("", "ariadne-bench-*")
			if err != nil {
				return nil, err
			}
			_, capRes, err := r.timeRun(spec.g, spec.prog,
				append([]ariadne.Option{ariadne.WithCaptureQuery(queries.CaptureFull(),
					provenance.StoreConfig{SpillDir: spillDir, SpillAll: true})}, spec.opts...)...)
			if err != nil {
				os.RemoveAll(spillDir)
				return nil, err
			}
			store := capRes.Provenance
			cleanup := func() {
				store.Close()
				os.RemoveAll(spillDir)
			}
			for _, def := range queryPick(spec.name) {
				row := ModesRow{Query: def.Name, Dataset: d.Name, Analytic: spec.name, Baseline: base}

				onT, _, err := r.timeRun(spec.g, spec.prog,
					append([]ariadne.Option{ariadne.WithOnlineQuery(def)}, spec.opts...)...)
				if err != nil {
					cleanup()
					return nil, err
				}
				row.OnlineX = overhead(onT, base)

				start := time.Now()
				if _, err := ariadne.QueryOffline(def, store, spec.g, ariadne.ModeLayered, 0); err != nil {
					cleanup()
					return nil, err
				}
				row.LayeredX = overhead(time.Since(start), base)

				start = time.Now()
				_, err = ariadne.QueryOffline(def, store, spec.g, ariadne.ModeNaive, r.cfg.naiveBudget())
				switch {
				case errors.Is(err, driver.ErrNaiveBudget):
					row.NaiveDNF = true
					row.NaiveX = math.NaN()
				case err != nil:
					cleanup()
					return nil, err
				default:
					row.NaiveX = overhead(time.Since(start), base)
				}

				rows = append(rows, row)
				naive := fmt.Sprintf("%7.2fx", row.NaiveX)
				if row.NaiveDNF {
					naive = "    DNF"
				}
				fmt.Fprintf(r.cfg.out(), "%-22s %-8s %-9s %7.2fx %7.2fx %s\n", row.Query, row.Dataset, row.Analytic, row.OnlineX, row.LayeredX, naive)
			}
			cleanup()
		}
	}
	return rows, nil
}

// --- Figure 9: ALS monitoring queries ---

// ALSRow is one bar of Figure 9.
type ALSRow struct {
	Variant  string // ML-20^5, ML-20^10, ML-20^15
	Query    string
	Baseline time.Duration
	OnlineX  float64
}

// Fig9 measures Queries 7 and 8 online over ALS with 5, 10, and 15
// features (the paper's ML-20^5..ML-20^15 variants).
func (r *Runner) Fig9() ([]ALSRow, error) {
	fmt.Fprintf(r.cfg.out(), "\nFigure 9: ALS monitoring queries (x baseline, online)\n%-10s %-24s %12s %8s\n", "Variant", "Query", "Baseline", "Online")
	ml, err := gen.MLDataset(r.cfg.SizeFactor)
	if err != nil {
		return nil, err
	}
	var rows []ALSRow
	for _, k := range []int{5, 10, 15} {
		prog := func() ariadne.Program {
			return &analytics.ALS{NumUsers: ml.NumUsers, Features: k, Seed: 7}
		}
		opts := []ariadne.Option{ariadne.WithMaxSupersteps(10)}
		base, _, err := r.timeRun(ml.Graph, prog, opts...)
		if err != nil {
			return nil, err
		}
		for _, def := range []queries.Definition{queries.ALSRangeCheck(), queries.ALSErrorIncrease(0.5)} {
			onT, _, err := r.timeRun(ml.Graph, prog,
				append([]ariadne.Option{ariadne.WithOnlineQuery(def)}, opts...)...)
			if err != nil {
				return nil, err
			}
			row := ALSRow{
				Variant: fmt.Sprintf("ML-20^%d", k), Query: def.Name,
				Baseline: base, OnlineX: overhead(onT, base),
			}
			rows = append(rows, row)
			fmt.Fprintf(r.cfg.out(), "%-10s %-24s %12v %7.2fx\n", row.Variant, row.Query, row.Baseline.Round(time.Millisecond), row.OnlineX)
		}
	}
	return rows, nil
}

// --- Figure 10 and Tables 5, 6: the approximate optimization ---

// ApproxRow is one dataset row of Table 5/6 plus its Figure 10 speedup bar.
type ApproxRow struct {
	Dataset  string
	Error    float64
	MedianA  float64 // original analytic
	MedianB  float64 // optimized analytic
	Speedup  float64
	Analytic string
}

// Table5 runs original versus optimized (delta) PageRank at ε=0.01.
func (r *Runner) Table5() ([]ApproxRow, error) {
	fmt.Fprintf(r.cfg.out(), "\nTable 5 + Fig 10 (left): PageRank approximate optimization (eps=0.01)\n%-8s %12s %10s %10s %9s\n", "Dataset", "Error(L2)", "MedianA", "MedianB", "Speedup")
	var rows []ApproxRow
	n := r.cfg.supersteps()
	for _, d := range r.datasets() {
		g, err := r.graph(d)
		if err != nil {
			return nil, err
		}
		baseT, baseRes, err := r.timeRun(g, func() ariadne.Program { return &analytics.PageRank{Iterations: n} }, ariadne.WithMaxSupersteps(n+1))
		if err != nil {
			return nil, err
		}
		optT, optRes, err := r.timeRun(g, func() ariadne.Program { return &analytics.DeltaPageRank{Epsilon: 0.01} }, ariadne.WithMaxSupersteps(n+1))
		if err != nil {
			return nil, err
		}
		row := ApproxRow{
			Dataset: d.Name, Analytic: "PageRank",
			Error:   lpRelativeError(baseRes.Values, optRes.Values, 2),
			MedianA: medianFloat(baseRes.Values, false),
			MedianB: medianFloat(optRes.Values, false),
			Speedup: overhead(baseT, optT),
		}
		rows = append(rows, row)
		fmt.Fprintf(r.cfg.out(), "%-8s %12.1e %10.3f %10.3f %8.2fx\n", row.Dataset, row.Error, row.MedianA, row.MedianB, row.Speedup)
	}
	return rows, nil
}

// Table6 runs original versus optimized SSSP at ε=0.1.
func (r *Runner) Table6() ([]ApproxRow, error) {
	fmt.Fprintf(r.cfg.out(), "\nTable 6 + Fig 10 (right): SSSP approximate optimization (eps=0.1)\n%-8s %12s %10s %10s %9s\n", "Dataset", "Error(L1)", "MedianA", "MedianB", "Speedup")
	var rows []ApproxRow
	for _, d := range r.datasets() {
		g, err := r.graph(d)
		if err != nil {
			return nil, err
		}
		baseT, baseRes, err := r.timeRun(g, func() ariadne.Program { return &analytics.SSSP{Source: 0} })
		if err != nil {
			return nil, err
		}
		optT, optRes, err := r.timeRun(g, func() ariadne.Program {
			apt, err := analytics.NewApproximate(&analytics.SSSP{Source: 0}, analytics.AbsDiff, 0.1)
			if err != nil {
				panic(err)
			}
			return apt
		})
		if err != nil {
			return nil, err
		}
		row := ApproxRow{
			Dataset: d.Name, Analytic: "SSSP",
			Error:   lpRelativeError(baseRes.Values, optRes.Values, 1),
			MedianA: medianFloat(baseRes.Values, true),
			MedianB: medianFloat(optRes.Values, true),
			Speedup: overhead(baseT, optT),
		}
		rows = append(rows, row)
		fmt.Fprintf(r.cfg.out(), "%-8s %12.1e %10.3f %10.3f %8.2fx\n", row.Dataset, row.Error, row.MedianA, row.MedianB, row.Speedup)
	}
	return rows, nil
}

// Fig10WCC runs the deliberately *unsafe* WCC optimization (ε=1): the apt
// query predicts it is unsafe, and the measured label disagreement (~0.9 in
// the paper) confirms it.
func (r *Runner) Fig10WCC() ([]ApproxRow, error) {
	fmt.Fprintf(r.cfg.out(), "\nWCC \"optimized\" run (unsafe per apt query; error is label disagreement)\n%-8s %12s\n", "Dataset", "Error")
	var rows []ApproxRow
	for _, d := range r.datasets() {
		u, err := r.undirected(d)
		if err != nil {
			return nil, err
		}
		_, baseRes, err := r.timeRun(u, func() ariadne.Program { return analytics.WCC{} })
		if err != nil {
			return nil, err
		}
		_, optRes, err := r.timeRun(u, func() ariadne.Program {
			apt, err := analytics.NewApproximate(analytics.WCC{}, analytics.AbsDiff, 1)
			if err != nil {
				panic(err)
			}
			return apt
		})
		if err != nil {
			return nil, err
		}
		row := ApproxRow{
			Dataset: d.Name, Analytic: "WCC",
			Error: labelDisagreement(baseRes.Values, optRes.Values),
		}
		rows = append(rows, row)
		fmt.Fprintf(r.cfg.out(), "%-8s %12.2f\n", row.Dataset, row.Error)
	}
	return rows, nil
}

// --- Figure 12: backward lineage, full vs custom provenance ---

// BackwardRow is one (dataset, analytic) bar pair of Figure 12.
type BackwardRow struct {
	Dataset, Analytic string
	Baseline          time.Duration
	FullX, CustomX    float64
	// TraceSize is the number of provenance nodes in the backward trace
	// (identical between full and custom per the paper).
	TraceSize int
}

// Fig12 measures layered backward tracing (Query 10 on full provenance vs
// Query 12 on Query 11's custom provenance).
func (r *Runner) Fig12() ([]BackwardRow, error) {
	fmt.Fprintf(r.cfg.out(), "\nFigure 12: Backward lineage, layered (x baseline)\n%-8s %-9s %12s %8s %8s %10s\n", "Dataset", "Analytic", "Baseline", "Full", "Custom", "TraceSize")
	var rows []BackwardRow
	for _, d := range r.datasets() {
		specs, err := r.analyticsFor(d)
		if err != nil {
			return nil, err
		}
		for _, spec := range specs {
			base, _, err := r.timeRun(spec.g, spec.prog, spec.opts...)
			if err != nil {
				return nil, err
			}
			// Full capture to disk (the HDFS stand-in); the trace starts at a
			// vertex active in the last superstep.
			spillDir, err := os.MkdirTemp("", "ariadne-bench-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(spillDir)
			_, fullRes, err := r.timeRun(spec.g, spec.prog,
				append([]ariadne.Option{ariadne.WithCaptureQuery(queries.CaptureFull(),
					provenance.StoreConfig{SpillDir: spillDir, SpillAll: true})}, spec.opts...)...)
			if err != nil {
				return nil, err
			}
			fullStore := fullRes.Provenance
			defer fullStore.Close()
			last, err := fullStore.Layer(fullStore.NumLayers() - 1)
			if err != nil {
				return nil, err
			}
			if len(last.Records) == 0 {
				return nil, fmt.Errorf("bench: no vertex active in last superstep of %s/%s", d.Name, spec.name)
			}
			alpha, sigma := last.Records[0].Vertex, last.Superstep

			start := time.Now()
			q10, err := ariadne.QueryOffline(queries.BackwardTrace(alpha, sigma), fullStore, spec.g, ariadne.ModeLayered, 0)
			if err != nil {
				return nil, err
			}
			fullT := time.Since(start)

			custDir, err := os.MkdirTemp("", "ariadne-bench-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(custDir)
			_, custRes, err := r.timeRun(spec.g, spec.prog,
				append([]ariadne.Option{ariadne.WithCaptureQuery(queries.CaptureBackwardCustom(),
					provenance.StoreConfig{SpillDir: custDir, SpillAll: true})}, spec.opts...)...)
			if err != nil {
				return nil, err
			}
			defer custRes.Provenance.Close()
			start = time.Now()
			q12, err := ariadne.QueryOffline(queries.BackwardTraceCustom(alpha, sigma), custRes.Provenance, spec.g, ariadne.ModeLayered, 0)
			if err != nil {
				return nil, err
			}
			custT := time.Since(start)

			row := BackwardRow{
				Dataset: d.Name, Analytic: spec.name, Baseline: base,
				FullX: overhead(fullT, base), CustomX: overhead(custT, base),
				TraceSize: q10.Relation("back_trace").Len(),
			}
			if got := q12.Relation("back_trace").Len(); got != row.TraceSize {
				fmt.Fprintf(r.cfg.out(), "WARNING: %s/%s trace sizes differ: full=%d custom=%d\n", d.Name, spec.name, row.TraceSize, got)
			}
			rows = append(rows, row)
			fmt.Fprintf(r.cfg.out(), "%-8s %-9s %12v %7.2fx %7.2fx %10d\n", row.Dataset, row.Analytic, row.Baseline.Round(time.Millisecond), row.FullX, row.CustomX, row.TraceSize)
		}
	}
	return rows, nil
}

// --- §6.1 ALS capture blow-up ---

// ALSCaptureResult describes the ALS full-capture outcome under a budget.
type ALSCaptureResult struct {
	BudgetBytes   int64
	FailedNoSpill bool
	SpilledLayers int
	TotalBytes    int64
}

// ALSCapture reproduces §6.1's ALS observation: full provenance capture for
// ALS (vector values, per-edge messages) blows past a memory budget; with a
// spill directory it survives by offloading layers.
func (r *Runner) ALSCapture(spillDir string) (*ALSCaptureResult, error) {
	ml, err := gen.MLDataset(r.cfg.SizeFactor)
	if err != nil {
		return nil, err
	}
	prog := func() ariadne.Program {
		return &analytics.ALS{NumUsers: ml.NumUsers, Features: 10, Seed: 7}
	}
	budget := int64(1 << 20)
	out := &ALSCaptureResult{BudgetBytes: budget}

	_, _, err = r.timeRun(ml.Graph, prog, ariadne.WithMaxSupersteps(8),
		ariadne.WithCapture(ariadne.CapturePolicy{Values: true, Sends: true, Recvs: true, Emitted: []string{"*"}},
			provenance.StoreConfig{MemoryBudget: budget}))
	out.FailedNoSpill = errors.Is(err, provenance.ErrBudgetExceeded)
	if err != nil && !out.FailedNoSpill {
		return nil, err
	}

	if spillDir != "" {
		_, res, err := r.timeRun(ml.Graph, prog, ariadne.WithMaxSupersteps(8),
			ariadne.WithCapture(ariadne.CapturePolicy{Values: true, Sends: true, Recvs: true, Emitted: []string{"*"}},
				provenance.StoreConfig{MemoryBudget: 16 << 20, SpillDir: spillDir}))
		if err != nil {
			return nil, err
		}
		defer res.Provenance.Close()
		out.SpilledLayers = res.Provenance.SpilledLayers()
		out.TotalBytes = res.Provenance.TotalBytes()
	}
	fmt.Fprintf(r.cfg.out(), "\nALS full capture (§6.1): budget=%s failed-without-spill=%v spilled-layers=%d total=%s\n",
		gbLike(out.BudgetBytes), out.FailedNoSpill, out.SpilledLayers, gbLike(out.TotalBytes))
	return out, nil
}
