// Package fault provides deterministic fault injection for the engine,
// checkpoint, and provenance-spill I/O paths. Production code consults an
// (always optional, nil-safe) *Injector at named sites; tests and the
// `ariadne run -faults` flag arm it with rules that fire panics or
// transient I/O errors at chosen (site, superstep, partition, vertex)
// points. Injection is deterministic: a rule fires whenever its selectors
// match, up to its Times budget, independent of goroutine scheduling —
// matching is keyed on the site coordinates, never on wall clock or
// randomness, so a crash-recovery test replays exactly.
package fault

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Injection sites. Each names one guarded operation.
const (
	// SiteCompute guards each vertex-program Compute call. Panic rules here
	// simulate a crashing vertex program on a worker.
	SiteCompute = "compute"
	// SiteSpillWrite guards provenance layer-file writes.
	SiteSpillWrite = "spill.write"
	// SiteCheckpointWrite guards engine checkpoint-file writes.
	SiteCheckpointWrite = "checkpoint.write"
	// SiteCapture guards per-partition provenance capture at the superstep
	// barrier. Error rules here simulate a failing capture side-channel
	// (the degraded-mode trigger); the analytic itself is unaffected.
	SiteCapture = "capture"
	// SiteNetSend guards each transport frame send on the master side; the
	// vertex coordinate carries the message sequence number. Drop/Dup/Reset
	// rules here simulate lossy, duplicating, or resetting links on the
	// request direction; Delay simulates a slow link.
	SiteNetSend = "net.send"
	// SiteNetRecv guards each transport reply receive on the master side
	// (same coordinates as SiteNetSend). A Drop rule here models the
	// one-way-partition scenario: requests arrive at the worker but replies
	// never make it back.
	SiteNetRecv = "net.recv"
	// SitePeerSend guards each worker→worker fragment send on the peer mesh
	// (PR 9); the partition coordinate is the destination partition and the
	// vertex slot carries the frame sequence number. Armed on the *worker*
	// injector, not the master's — the master never sees these frames.
	SitePeerSend = "peer.send"
	// SitePeerRecv guards each fragment receive on the peer mesh (same
	// coordinates as SitePeerSend, consulted by the receiving worker).
	SitePeerRecv = "peer.recv"
)

// ErrInjected is the base error of injected (transient) I/O failures.
var ErrInjected = errors.New("fault: injected error")

// Rule selects an injection point. Zero selectors (or -1) are wildcards.
type Rule struct {
	// Site names the guarded operation (SiteCompute, SiteSpillWrite, ...).
	Site string
	// Superstep restricts the rule to one superstep; -1 matches any.
	Superstep int
	// Partition restricts the rule to one worker partition; -1 matches any.
	Partition int
	// Vertex restricts the rule to one vertex; -1 matches any.
	Vertex int64
	// Times bounds how often the rule fires; 0 means once.
	Times int
	// Panic makes the site panic instead of returning an error — the
	// worker-crash scenario (the engine's recover() converts it into a
	// CrashError).
	Panic bool
	// Hang makes the site block until the HitWait context is done — the
	// hung-worker scenario. Without a deadline or cancellation on the
	// context the site blocks forever, exactly like a real wedged worker;
	// partition supervision bounds it with a per-partition deadline.
	Hang bool
	// Delay makes the site sleep before proceeding — the straggler
	// scenario. A pure-delay rule (Panic false) returns nil after
	// sleeping: the operation is slow, not failed. The sleep is cut short
	// by the context passed to HitWait, in which case the rule reports an
	// injected error wrapping the context error.
	Delay time.Duration
	// Network actions, consulted only by NetHit at the net.* sites. Drop
	// discards the frame silently (lost packet), Dup delivers it twice
	// (retransmit-induced duplicate the receiver must dedup), Reset tears
	// the connection down (peer reset). At most one should be set.
	Drop  bool
	Dup   bool
	Reset bool
}

func (r Rule) times() int {
	if r.Times <= 0 {
		return 1
	}
	return r.Times
}

type armedRule struct {
	Rule
	fired int
}

// Injector holds armed rules. A nil *Injector is valid and injects nothing,
// so call sites need no guards.
type Injector struct {
	mu    sync.Mutex
	rules []*armedRule
	total int
}

// NewInjector arms the given rules.
func NewInjector(rules ...Rule) *Injector {
	in := &Injector{}
	for _, r := range rules {
		in.rules = append(in.rules, &armedRule{Rule: r})
	}
	return in
}

// PanicAt is a convenience rule: panic in Compute at (superstep, vertex).
// vertex -1 crashes the first vertex computed at that superstep.
func PanicAt(superstep int, vertex int64) Rule {
	return Rule{Site: SiteCompute, Superstep: superstep, Partition: -1, Vertex: vertex, Panic: true}
}

// IOErrors is a convenience rule: fail the named I/O site times times.
func IOErrors(site string, times int) Rule {
	return Rule{Site: site, Superstep: -1, Partition: -1, Vertex: -1, Times: times}
}

// Matrix returns the canonical partition-targeted fault scenarios, keyed by
// name, against the given partition: a worker panic and a worker hang at
// superstep ss, a Delay-long slowdown at every superstep, and captureFails
// consecutive capture-side failures. Supervision tests and the CI
// fault-matrix job iterate over these so every failure domain the
// supervisor handles is exercised by one table.
func Matrix(partition, ss int, delay time.Duration, captureFails int) map[string][]Rule {
	return map[string][]Rule{
		"panic": {{Site: SiteCompute, Superstep: ss, Partition: partition, Vertex: -1, Panic: true}},
		"hang":  {{Site: SiteCompute, Superstep: ss, Partition: partition, Vertex: -1, Hang: true}},
		"delay": {{Site: SiteCompute, Superstep: ss, Partition: partition, Vertex: -1, Delay: delay}},
		"capture-fail": {{Site: SiteCapture, Superstep: -1, Partition: partition, Vertex: -1,
			Times: captureFails}},
	}
}

// NetAction is the outcome NetHit prescribes for one transport frame.
type NetAction int

// Network frame outcomes.
const (
	// NetPass delivers the frame normally (possibly after an injected delay).
	NetPass NetAction = iota
	// NetDrop discards the frame silently; the sender's deadline fires.
	NetDrop
	// NetDup delivers the frame twice; the receiver's dedup must absorb it.
	NetDup
	// NetReset tears down the connection as if the peer reset it.
	NetReset
)

// NetHit consults the injector at a network site (SiteNetSend or
// SiteNetRecv). The coordinates are (superstep, partition, seq) — seq rides
// in the vertex selector slot, so rules can target one specific frame. A
// matching rule yields its action (after any injected delay, interruptible
// by ctx); a rule with no Drop/Dup/Reset flag is an error rule and returns
// a wrapped ErrInjected like HitWait does. nil injector always passes.
func (in *Injector) NetHit(ctx context.Context, site string, superstep, partition int, seq int64) (NetAction, error) {
	if in == nil {
		return NetPass, nil
	}
	fire := in.match(site, superstep, partition, seq)
	if fire == nil {
		return NetPass, nil
	}
	if fire.Delay > 0 {
		t := time.NewTimer(fire.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return NetPass, fmt.Errorf("%w: delay interrupted at %s (superstep %d, partition %d, seq %d): %w",
				ErrInjected, site, superstep, partition, seq, ctx.Err())
		}
	}
	switch {
	case fire.Drop:
		return NetDrop, nil
	case fire.Dup:
		return NetDup, nil
	case fire.Reset:
		return NetReset, nil
	case fire.Delay > 0:
		return NetPass, nil // pure slow link
	}
	return NetPass, fmt.Errorf("%w: %s (superstep %d, partition %d, seq %d)",
		ErrInjected, site, superstep, partition, seq)
}

// match finds and consumes the first armed rule matching the coordinates.
func (in *Injector) match(site string, superstep, partition int, vertex int64) *armedRule {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Site != site || r.fired >= r.times() {
			continue
		}
		if r.Superstep >= 0 && r.Superstep != superstep {
			continue
		}
		if r.Partition >= 0 && r.Partition != partition {
			continue
		}
		if r.Vertex >= 0 && r.Vertex != vertex {
			continue
		}
		r.fired++
		in.total++
		return r
	}
	return nil
}

// NetMatrix returns the canonical network fault scenarios against one
// partition's transport leg, keyed by name: a dropped request (retransmit
// recovers), a slow link (delay, no loss), a duplicated frame (receiver
// dedup absorbs it), a connection reset (reconnect recovers), a one-way
// partition (requests arrive, replies drop — deadline plus retransmit
// recover), and an unreachable peer (everything drops past any retry
// budget — the engine falls back to local execution and sheds capture).
// The transport fault matrix test and the CI fault-matrix-net job iterate
// over these.
func NetMatrix(partition, ss int, delay time.Duration) map[string][]Rule {
	return map[string][]Rule{
		"drop":  {{Site: SiteNetSend, Superstep: ss, Partition: partition, Vertex: -1, Drop: true}},
		"delay": {{Site: SiteNetSend, Superstep: -1, Partition: partition, Vertex: -1, Delay: delay, Times: 1 << 20}},
		"dup":   {{Site: SiteNetSend, Superstep: ss, Partition: partition, Vertex: -1, Dup: true}},
		"reset": {{Site: SiteNetSend, Superstep: ss, Partition: partition, Vertex: -1, Reset: true}},
		"oneway": {{Site: SiteNetRecv, Superstep: ss, Partition: partition, Vertex: -1, Drop: true,
			Times: 2}},
		"unreachable": {{Site: SiteNetSend, Superstep: -1, Partition: partition, Vertex: -1, Drop: true,
			Times: 1 << 20}},
	}
}

// NetMatrixPeer extends NetMatrix to the worker→worker mesh links (PR 9):
// the same drop/delay/dup/reset scenarios, but at the peer.* sites, so the
// fragment routing between workers is exercised rather than the
// master↔worker legs. These rules are armed on the *workers'* injectors.
// A dropped or reset fragment either recovers via the sender's mesh retry
// or surfaces as a missing fragment at the delivery barrier, where the
// master replays the partition's inbox deterministically — either way the
// run stays bit-identical. The peer fault matrix test and the CI
// fault-matrix-net job iterate over these.
func NetMatrixPeer(partition, ss int, delay time.Duration) map[string][]Rule {
	return map[string][]Rule{
		"peer-drop":  {{Site: SitePeerSend, Superstep: ss, Partition: partition, Vertex: -1, Drop: true}},
		"peer-delay": {{Site: SitePeerSend, Superstep: -1, Partition: partition, Vertex: -1, Delay: delay, Times: 1 << 20}},
		"peer-dup":   {{Site: SitePeerSend, Superstep: ss, Partition: partition, Vertex: -1, Dup: true}},
		"peer-reset": {{Site: SitePeerSend, Superstep: ss, Partition: partition, Vertex: -1, Reset: true}},
		"peer-recv-drop": {{Site: SitePeerRecv, Superstep: ss, Partition: partition, Vertex: -1, Drop: true,
			Times: 2}},
	}
}

// Hit consults the injector at a site. It panics if a matching Panic rule
// fires, returns a wrapped ErrInjected if a matching error rule fires, and
// returns nil otherwise. Pass -1 for coordinates a site does not have.
// Hang and Delay rules block against context.Background() — use HitWait at
// sites that run under a supervision deadline.
func (in *Injector) Hit(site string, superstep, partition int, vertex int64) error {
	return in.HitWait(context.Background(), site, superstep, partition, vertex)
}

// HitWait is Hit with a context bounding injected hangs and delays: a Hang
// rule blocks until ctx is done, a Delay rule sleeps (interruptibly) before
// the rule's normal outcome. The returned error wraps ErrInjected and, when
// the wait was cut short, the context error — so supervision can classify a
// deadline-expired hang as retryable via errors.Is(err, ctx.Err()).
func (in *Injector) HitWait(ctx context.Context, site string, superstep, partition int, vertex int64) error {
	if in == nil {
		return nil
	}
	fire := in.match(site, superstep, partition, vertex)
	if fire == nil {
		return nil
	}
	if fire.Hang {
		<-ctx.Done()
		return fmt.Errorf("%w: hang at %s (superstep %d, partition %d, vertex %d): %w",
			ErrInjected, site, superstep, partition, vertex, ctx.Err())
	}
	if fire.Delay > 0 {
		t := time.NewTimer(fire.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("%w: delay interrupted at %s (superstep %d, partition %d, vertex %d): %w",
				ErrInjected, site, superstep, partition, vertex, ctx.Err())
		}
		if !fire.Panic {
			// Pure slowdown: the operation is late, not broken.
			return nil
		}
	}
	if fire.Panic {
		panic(fmt.Sprintf("fault: injected panic at %s (superstep %d, partition %d, vertex %d)",
			site, superstep, partition, vertex))
	}
	return fmt.Errorf("%w: %s (superstep %d, partition %d, vertex %d)",
		ErrInjected, site, superstep, partition, vertex)
}

// Fired returns how many injections have fired so far.
func (in *Injector) Fired() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// ParseSpec parses the CLI fault specification: semicolon-separated
// clauses, each "site[:key=value...]" with keys ss (superstep), part
// (partition), vertex, times, delay (Go duration), and
// mode=panic|error|hang. Examples:
//
//	compute:mode=panic:ss=3
//	compute:mode=panic:ss=2:vertex=17;spill.write:times=2
//	compute:mode=hang:ss=4:part=1
//	compute:delay=50ms:part=2;capture:part=1:times=8
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		r := Rule{Site: parts[0], Superstep: -1, Partition: -1, Vertex: -1}
		switch r.Site {
		case SiteCompute, SiteSpillWrite, SiteCheckpointWrite, SiteCapture,
			SiteNetSend, SiteNetRecv, SitePeerSend, SitePeerRecv:
		default:
			return nil, fmt.Errorf("fault: unknown site %q (want %s, %s, %s, %s, %s, %s, %s, or %s)",
				r.Site, SiteCompute, SiteSpillWrite, SiteCheckpointWrite, SiteCapture,
				SiteNetSend, SiteNetRecv, SitePeerSend, SitePeerRecv)
		}
		for _, kv := range parts[1:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: malformed option %q in clause %q", kv, clause)
			}
			switch key {
			case "mode":
				switch val {
				case "panic":
					r.Panic = true
				case "error":
					r.Panic = false
				case "hang":
					r.Hang = true
				case "drop":
					r.Drop = true
				case "dup":
					r.Dup = true
				case "reset":
					r.Reset = true
				default:
					return nil, fmt.Errorf("fault: unknown mode %q (want panic, error, hang, drop, dup, or reset)", val)
				}
			case "delay":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("fault: bad delay %q: %v", val, err)
				}
				r.Delay = d
			case "ss", "superstep":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("fault: bad superstep %q: %v", val, err)
				}
				r.Superstep = n
			case "part", "partition":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("fault: bad partition %q: %v", val, err)
				}
				r.Partition = n
			case "vertex":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: bad vertex %q: %v", val, err)
				}
				r.Vertex = n
			case "times":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("fault: bad times %q: %v", val, err)
				}
				r.Times = n
			default:
				return nil, fmt.Errorf("fault: unknown option %q in clause %q", key, clause)
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, errors.New("fault: empty specification")
	}
	return rules, nil
}

// Retry runs f up to attempts times, sleeping base, 2*base, 4*base, ...
// (capped at 50ms) between tries — the capped exponential backoff used by
// the spill and checkpoint writers for transient I/O errors. The last
// error is returned when every attempt fails.
func Retry(attempts int, base time.Duration, f func() error) error {
	return RetryNotify(attempts, base, f, nil)
}

// RetryNotify is Retry with a retry hook: notify (when non-nil) is called
// with the 1-based failed attempt number and its error before each backoff
// sleep — i.e. only when another attempt will follow — so callers can
// surface transient-fault fallbacks (trace events, retry counters) instead
// of retrying silently. The final failure is returned, not notified.
func RetryNotify(attempts int, base time.Duration, f func() error, notify func(attempt int, err error)) error {
	if attempts <= 0 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = f(); err == nil {
			return nil
		}
		if i < attempts-1 {
			if notify != nil {
				notify(i+1, err)
			}
			d := base << uint(i)
			if max := 50 * time.Millisecond; d > max {
				d = max
			}
			time.Sleep(d)
		}
	}
	return err
}
