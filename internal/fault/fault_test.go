package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Hit(SiteCompute, 0, 0, 0); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if in.Fired() != 0 {
		t.Fatalf("nil injector fired %d times", in.Fired())
	}
}

func TestRuleSelectors(t *testing.T) {
	in := NewInjector(Rule{Site: SiteSpillWrite, Superstep: 2, Partition: -1, Vertex: -1})
	if err := in.Hit(SiteCompute, 2, 0, 0); err != nil {
		t.Errorf("wrong site fired: %v", err)
	}
	if err := in.Hit(SiteSpillWrite, 1, 0, 0); err != nil {
		t.Errorf("wrong superstep fired: %v", err)
	}
	err := in.Hit(SiteSpillWrite, 2, -1, -1)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("matching hit = %v, want ErrInjected", err)
	}
	// Times defaults to once: the rule is exhausted now.
	if err := in.Hit(SiteSpillWrite, 2, -1, -1); err != nil {
		t.Errorf("exhausted rule fired again: %v", err)
	}
	if in.Fired() != 1 {
		t.Errorf("Fired = %d, want 1", in.Fired())
	}
}

func TestTimesBudget(t *testing.T) {
	in := NewInjector(IOErrors(SiteCheckpointWrite, 3))
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Hit(SiteCheckpointWrite, i, -1, -1) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
}

func TestPanicRule(t *testing.T) {
	in := NewInjector(PanicAt(1, 7))
	if err := in.Hit(SiteCompute, 1, 0, 3); err != nil {
		t.Fatalf("non-matching vertex fired: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("matching panic rule did not panic")
		}
	}()
	in.Hit(SiteCompute, 1, 0, 7)
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("compute:mode=panic:ss=3:vertex=17; spill.write:times=2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	if !rules[0].Panic || rules[0].Superstep != 3 || rules[0].Vertex != 17 || rules[0].Site != SiteCompute {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	if rules[1].Panic || rules[1].Times != 2 || rules[1].Site != SiteSpillWrite {
		t.Errorf("rule 1 = %+v", rules[1])
	}

	for _, bad := range []string{"", "explode", "compute:ss", "compute:mode=sometimes", "compute:ss=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestHitWaitHang(t *testing.T) {
	in := NewInjector(Rule{Site: SiteCompute, Superstep: -1, Partition: 1, Vertex: -1, Hang: true})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.HitWait(ctx, SiteCompute, 3, 1, 42)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang = %v, want ErrInjected wrapping DeadlineExceeded", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("hang returned before the context deadline")
	}
	// Non-matching partition passes through untouched.
	if err := in.HitWait(ctx, SiteCompute, 3, 0, 42); err != nil {
		t.Fatalf("non-matching hit = %v", err)
	}
}

func TestHitWaitDelay(t *testing.T) {
	// A completed pure delay is slow, not failed.
	in := NewInjector(Rule{Site: SiteCompute, Superstep: -1, Partition: -1, Vertex: -1, Delay: time.Millisecond})
	start := time.Now()
	if err := in.HitWait(context.Background(), SiteCompute, 0, 0, 0); err != nil {
		t.Fatalf("completed delay = %v, want nil", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay rule did not sleep")
	}

	// An interrupted delay reports the injected error with the context cause.
	in2 := NewInjector(Rule{Site: SiteCompute, Superstep: -1, Partition: -1, Vertex: -1, Delay: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err := in2.HitWait(ctx, SiteCompute, 0, 0, 0)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("interrupted delay = %v, want ErrInjected wrapping DeadlineExceeded", err)
	}
}

func TestParseSpecHangDelayCapture(t *testing.T) {
	rules, err := ParseSpec("compute:mode=hang:ss=4:part=1; compute:delay=50ms:part=2; capture:part=0:times=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules, want 3", len(rules))
	}
	if !rules[0].Hang || rules[0].Superstep != 4 || rules[0].Partition != 1 {
		t.Errorf("hang rule = %+v", rules[0])
	}
	if rules[1].Delay != 50*time.Millisecond || rules[1].Partition != 2 {
		t.Errorf("delay rule = %+v", rules[1])
	}
	if rules[2].Site != SiteCapture || rules[2].Times != 3 || rules[2].Partition != 0 {
		t.Errorf("capture rule = %+v", rules[2])
	}
	if _, err := ParseSpec("compute:delay=fast"); err == nil {
		t.Error("bad delay should fail")
	}
}

func TestMatrix(t *testing.T) {
	m := Matrix(1, 3, 10*time.Millisecond, 4)
	for _, name := range []string{"panic", "hang", "delay", "capture-fail"} {
		if len(m[name]) == 0 {
			t.Fatalf("Matrix missing scenario %q", name)
		}
	}
	if r := m["panic"][0]; !r.Panic || r.Partition != 1 || r.Superstep != 3 {
		t.Errorf("panic scenario = %+v", r)
	}
	if r := m["hang"][0]; !r.Hang || r.Partition != 1 {
		t.Errorf("hang scenario = %+v", r)
	}
	if r := m["delay"][0]; r.Delay != 10*time.Millisecond {
		t.Errorf("delay scenario = %+v", r)
	}
	if r := m["capture-fail"][0]; r.Site != SiteCapture || r.Times != 4 || r.Superstep != -1 {
		t.Errorf("capture-fail scenario = %+v", r)
	}
}

func TestRetry(t *testing.T) {
	in := NewInjector(IOErrors(SiteSpillWrite, 2))
	calls := 0
	err := Retry(4, time.Microsecond, func() error {
		calls++
		return in.Hit(SiteSpillWrite, -1, -1, -1)
	})
	if err != nil {
		t.Fatalf("retry should recover from 2 transient errors: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}

	in2 := NewInjector(IOErrors(SiteSpillWrite, 10))
	err = Retry(4, time.Microsecond, func() error {
		return in2.Hit(SiteSpillWrite, -1, -1, -1)
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted retry = %v, want ErrInjected", err)
	}
	if in2.Fired() != 4 {
		t.Errorf("attempts = %d, want 4", in2.Fired())
	}
}

func TestNetHitActions(t *testing.T) {
	in := NewInjector(
		Rule{Site: SiteNetSend, Superstep: 1, Partition: 0, Vertex: -1, Drop: true, Times: 1},
		Rule{Site: SiteNetSend, Superstep: 2, Partition: 0, Vertex: -1, Dup: true, Times: 1},
		Rule{Site: SiteNetRecv, Superstep: 3, Partition: 0, Vertex: -1, Reset: true, Times: 1},
	)
	ctx := context.Background()
	cases := []struct {
		site string
		ss   int
		want NetAction
	}{
		{SiteNetSend, 0, NetPass}, // no rule matches
		{SiteNetSend, 1, NetDrop},
		{SiteNetSend, 1, NetPass}, // times budget spent
		{SiteNetSend, 2, NetDup},
		{SiteNetRecv, 3, NetReset},
		{SiteNetRecv, 4, NetPass},
	}
	for i, tc := range cases {
		act, err := in.NetHit(ctx, tc.site, tc.ss, 0, int64(i))
		if err != nil {
			t.Errorf("case %d: action rules never error, got %v", i, err)
		}
		if act != tc.want {
			t.Errorf("case %d: action = %v, want %v", i, act, tc.want)
		}
	}
	if in.Fired() != 3 {
		t.Errorf("fired = %d, want 3", in.Fired())
	}
}

func TestNetHitDelay(t *testing.T) {
	in := NewInjector(Rule{Site: SiteNetSend, Superstep: -1, Partition: -1, Vertex: -1,
		Delay: 5 * time.Millisecond, Times: 1})
	start := time.Now()
	act, err := in.NetHit(context.Background(), SiteNetSend, 0, 0, 1)
	if err != nil || act != NetPass {
		t.Fatalf("pure delay should pass: act=%v err=%v", act, err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("delay not applied: %v", d)
	}
	// A canceled context interrupts the delay instead of sleeping it out.
	in2 := NewInjector(Rule{Site: SiteNetSend, Superstep: -1, Partition: -1, Vertex: -1,
		Delay: time.Minute, Times: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start = time.Now()
	if _, err := in2.NetHit(ctx, SiteNetSend, 0, 0, 1); err == nil {
		t.Error("canceled delay should report the context error")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("canceled delay still slept %v", d)
	}
}

func TestParseSpecNetModes(t *testing.T) {
	rules, err := ParseSpec("net.send:mode=drop:part=1:ss=2; net.recv:mode=reset:times=3; net.send:mode=dup")
	if err != nil {
		t.Fatal(err)
	}
	if !rules[0].Drop || rules[0].Site != SiteNetSend || rules[0].Partition != 1 || rules[0].Superstep != 2 {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	if !rules[1].Reset || rules[1].Site != SiteNetRecv || rules[1].Times != 3 {
		t.Errorf("rule 1 = %+v", rules[1])
	}
	if !rules[2].Dup || rules[2].Site != SiteNetSend {
		t.Errorf("rule 2 = %+v", rules[2])
	}
}

func TestNetMatrixScenarios(t *testing.T) {
	m := NetMatrix(1, 2, time.Millisecond)
	for _, key := range []string{"drop", "delay", "dup", "reset", "oneway", "unreachable"} {
		rules, ok := m[key]
		if !ok || len(rules) == 0 {
			t.Errorf("matrix missing scenario %q", key)
		}
		for _, r := range rules {
			if r.Site != SiteNetSend && r.Site != SiteNetRecv {
				t.Errorf("%s: rule on non-net site %s", key, r.Site)
			}
		}
	}
	// unreachable must outlast any realistic retry budget.
	if m["unreachable"][0].Times < 1000 {
		t.Errorf("unreachable budget %d too small", m["unreachable"][0].Times)
	}
}
