package fault

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Hit(SiteCompute, 0, 0, 0); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if in.Fired() != 0 {
		t.Fatalf("nil injector fired %d times", in.Fired())
	}
}

func TestRuleSelectors(t *testing.T) {
	in := NewInjector(Rule{Site: SiteSpillWrite, Superstep: 2, Partition: -1, Vertex: -1})
	if err := in.Hit(SiteCompute, 2, 0, 0); err != nil {
		t.Errorf("wrong site fired: %v", err)
	}
	if err := in.Hit(SiteSpillWrite, 1, 0, 0); err != nil {
		t.Errorf("wrong superstep fired: %v", err)
	}
	err := in.Hit(SiteSpillWrite, 2, -1, -1)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("matching hit = %v, want ErrInjected", err)
	}
	// Times defaults to once: the rule is exhausted now.
	if err := in.Hit(SiteSpillWrite, 2, -1, -1); err != nil {
		t.Errorf("exhausted rule fired again: %v", err)
	}
	if in.Fired() != 1 {
		t.Errorf("Fired = %d, want 1", in.Fired())
	}
}

func TestTimesBudget(t *testing.T) {
	in := NewInjector(IOErrors(SiteCheckpointWrite, 3))
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Hit(SiteCheckpointWrite, i, -1, -1) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
}

func TestPanicRule(t *testing.T) {
	in := NewInjector(PanicAt(1, 7))
	if err := in.Hit(SiteCompute, 1, 0, 3); err != nil {
		t.Fatalf("non-matching vertex fired: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("matching panic rule did not panic")
		}
	}()
	in.Hit(SiteCompute, 1, 0, 7)
}

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("compute:mode=panic:ss=3:vertex=17; spill.write:times=2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	if !rules[0].Panic || rules[0].Superstep != 3 || rules[0].Vertex != 17 || rules[0].Site != SiteCompute {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	if rules[1].Panic || rules[1].Times != 2 || rules[1].Site != SiteSpillWrite {
		t.Errorf("rule 1 = %+v", rules[1])
	}

	for _, bad := range []string{"", "explode", "compute:ss", "compute:mode=sometimes", "compute:ss=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should fail", bad)
		}
	}
}

func TestRetry(t *testing.T) {
	in := NewInjector(IOErrors(SiteSpillWrite, 2))
	calls := 0
	err := Retry(4, time.Microsecond, func() error {
		calls++
		return in.Hit(SiteSpillWrite, -1, -1, -1)
	})
	if err != nil {
		t.Fatalf("retry should recover from 2 transient errors: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}

	in2 := NewInjector(IOErrors(SiteSpillWrite, 10))
	err = Retry(4, time.Microsecond, func() error {
		return in2.Hit(SiteSpillWrite, -1, -1, -1)
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted retry = %v, want ErrInjected", err)
	}
	if in2.Fired() != 4 {
		t.Errorf("attempts = %d, want 4", in2.Fired())
	}
}
