package fault

import (
	"fmt"
	"math/rand"
	"time"
)

// ChaosAction is one kind of disturbance in a chaos-soak schedule.
type ChaosAction int

// Chaos actions. Kill and Restart address a worker process (the chaos
// driver closes and relaunches it at a superstep barrier); Delay and Reset
// address one partition's transport leg and are applied through NetRules.
const (
	ChaosKill ChaosAction = iota
	ChaosRestart
	ChaosDelay
	ChaosReset
	// ChaosKillMid arms the worker to die after serving one more exec
	// instead of dying cleanly at the barrier: the kill lands mid
	// delta-stream, after the superstep's fragments may have partially
	// routed to peers but before the delivery barrier completes — the
	// hardest point for worker-resident state to recover from.
	ChaosKillMid
)

func (a ChaosAction) String() string {
	switch a {
	case ChaosKill:
		return "kill"
	case ChaosRestart:
		return "restart"
	case ChaosDelay:
		return "delay"
	case ChaosReset:
		return "reset"
	case ChaosKillMid:
		return "kill-mid"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// ChaosEvent is one scheduled disturbance. Kill/Restart events carry a
// Worker index; Delay/Reset events carry a Partition (network faults are
// keyed by partition, not peer, so they follow the work wherever failover
// routes it).
type ChaosEvent struct {
	Superstep int           `json:"superstep"`
	Action    ChaosAction   `json:"action"`
	Worker    int           `json:"worker,omitempty"`
	Partition int           `json:"partition,omitempty"`
	Delay     time.Duration `json:"delay,omitempty"`
}

// ChaosSchedule is a deterministic, seed-reproducible disturbance plan for
// one soak run: which workers die and come back at which superstep
// barriers, plus network-level delays and resets along the way. Events are
// ordered by superstep, then by generation order within a superstep.
type ChaosSchedule struct {
	Seed       int64        `json:"seed"`
	Workers    int          `json:"workers"`
	Supersteps int          `json:"supersteps"`
	Events     []ChaosEvent `json:"events"`
}

// ChaosPlan derives a schedule from the seed. The plan is pure: the same
// (seed, workers, supersteps, partitions) always yields the same events,
// so a failing soak replays exactly from its seed. Invariants, by
// construction:
//
//   - with two or more workers, at least one kill happens;
//   - every kill is followed by a restart of the same worker at a later
//     superstep, so the run always ends with the full pool alive;
//   - a kill never takes down the last live worker — the soak exercises
//     failover, not the all-dead pin-local path (that path has its own
//     directed test);
//   - all events land in supersteps [1, supersteps-2], leaving the first
//     and last barriers undisturbed.
func ChaosPlan(seed int64, workers, supersteps, partitions int) ChaosSchedule {
	rng := rand.New(rand.NewSource(seed))
	sched := ChaosSchedule{Seed: seed, Workers: workers, Supersteps: supersteps}
	if supersteps < 4 || partitions < 1 {
		return sched
	}

	alive := make([]bool, workers)
	for i := range alive {
		alive[i] = true
	}
	aliveCount := workers
	restartAt := make(map[int][]int) // superstep -> workers to revive

	killed := 0
	for ss := 1; ss <= supersteps-2; ss++ {
		for _, w := range restartAt[ss] {
			sched.Events = append(sched.Events, ChaosEvent{Superstep: ss, Action: ChaosRestart, Worker: w})
			alive[w] = true
			aliveCount++
		}
		delete(restartAt, ss)

		// Roughly one kill every four supersteps, never the last live worker.
		if aliveCount > 1 && rng.Intn(4) == 0 {
			w := pickAlive(rng, alive, aliveCount)
			sched.Events = append(sched.Events, ChaosEvent{Superstep: ss, Action: ChaosKill, Worker: w})
			alive[w] = false
			aliveCount--
			killed++
			// Revive after 1..3 barriers, clamped so the restart still lands
			// inside the run.
			back := ss + 1 + rng.Intn(3)
			if back > supersteps-2 {
				back = supersteps - 2
			}
			restartAt[back] = append(restartAt[back], w)
		}

		// Occasional slow or resetting link on a random partition.
		if rng.Intn(5) == 0 {
			ev := ChaosEvent{Superstep: ss, Partition: rng.Intn(partitions)}
			if rng.Intn(2) == 0 {
				ev.Action = ChaosDelay
				ev.Delay = time.Duration(1+rng.Intn(5)) * time.Millisecond
			} else {
				ev.Action = ChaosReset
			}
			sched.Events = append(sched.Events, ev)
		}
	}

	// A soak with no kill soaks nothing: force one mid-run. The restart slot
	// at supersteps-2 is guaranteed free of a conflicting kill because this
	// branch only runs when the random walk produced none.
	if killed == 0 && workers > 1 {
		w := rng.Intn(workers)
		mid := supersteps / 2
		sched.Events = append(sched.Events,
			ChaosEvent{Superstep: mid, Action: ChaosKill, Worker: w},
			ChaosEvent{Superstep: supersteps - 2, Action: ChaosRestart, Worker: w})
	}

	// A kill at the last disturbable barrier schedules its revival at that
	// same (already iterated) barrier; flush such leftovers so the run still
	// ends with the full pool alive.
	for _, ws := range restartAt {
		for _, w := range ws {
			sched.Events = append(sched.Events,
				ChaosEvent{Superstep: supersteps - 2, Action: ChaosRestart, Worker: w})
		}
	}

	sortEvents(sched.Events)
	return sched
}

// pickAlive returns the k-th live worker for a deterministic k.
func pickAlive(rng *rand.Rand, alive []bool, aliveCount int) int {
	k := rng.Intn(aliveCount)
	for i, a := range alive {
		if !a {
			continue
		}
		if k == 0 {
			return i
		}
		k--
	}
	return -1 // unreachable: aliveCount counts the true entries
}

// sortEvents orders events by superstep, keeping generation order within a
// superstep (restarts were generated before kills, so a worker revived and
// re-killed at the same barrier stays consistent). Insertion sort: the
// slice is tiny and nearly sorted.
func sortEvents(evs []ChaosEvent) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j-1].Superstep > evs[j].Superstep; j-- {
			evs[j-1], evs[j] = evs[j], evs[j-1]
		}
	}
}

// NetRules converts the schedule's network-level events (Delay, Reset)
// into injector rules on the master's send path. Kill and Restart events
// are not representable as rules — the chaos driver applies those to the
// worker processes directly at superstep barriers.
func (s ChaosSchedule) NetRules() []Rule {
	var rules []Rule
	for _, ev := range s.Events {
		switch ev.Action {
		case ChaosDelay:
			rules = append(rules, Rule{Site: SiteNetSend, Superstep: ev.Superstep,
				Partition: ev.Partition, Vertex: -1, Delay: ev.Delay, Times: 1})
		case ChaosReset:
			rules = append(rules, Rule{Site: SiteNetSend, Superstep: ev.Superstep,
				Partition: ev.Partition, Vertex: -1, Reset: true, Times: 1})
		}
	}
	return rules
}

// Kills returns how many kill events (barrier or mid-stream) the schedule
// holds.
func (s ChaosSchedule) Kills() int {
	n := 0
	for _, ev := range s.Events {
		if ev.Action == ChaosKill || ev.Action == ChaosKillMid {
			n++
		}
	}
	return n
}

// MidStream returns a copy of the schedule with every barrier kill turned
// into a mid-stream kill. The schedule stays a pure function of its seed —
// the same events at the same supersteps — only the kill timing within the
// following superstep changes, which is exactly what a kill-mid soak wants
// to compare against the barrier-kill soak of the same seed.
func (s ChaosSchedule) MidStream() ChaosSchedule {
	out := s
	out.Events = append([]ChaosEvent(nil), s.Events...)
	for i := range out.Events {
		if out.Events[i].Action == ChaosKill {
			out.Events[i].Action = ChaosKillMid
		}
	}
	return out
}
