package fault

import (
	"reflect"
	"testing"
)

// TestChaosPlanDeterministic: same seed, same plan — the whole point of a
// seeded soak is that a failure replays exactly.
func TestChaosPlanDeterministic(t *testing.T) {
	a := ChaosPlan(42, 3, 20, 8)
	b := ChaosPlan(42, 3, 20, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	c := ChaosPlan(43, 3, 20, 8)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("seeds 42 and 43 produced identical events — rng not wired to seed")
	}
}

// TestChaosPlanInvariants replays each plan against a liveness simulation:
// at least one kill, no kill of the last live worker, every kill restarted
// before the run ends, all events inside the disturbable window, ordered
// by superstep.
func TestChaosPlanInvariants(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		s := ChaosPlan(seed, 3, 20, 8)
		if s.Kills() == 0 {
			t.Fatalf("seed %d: no kill event in plan %+v", seed, s.Events)
		}
		alive := map[int]bool{0: true, 1: true, 2: true}
		prevSS := 0
		for _, ev := range s.Events {
			if ev.Superstep < 1 || ev.Superstep > s.Supersteps-2 {
				t.Fatalf("seed %d: event %+v outside [1, %d]", seed, ev, s.Supersteps-2)
			}
			if ev.Superstep < prevSS {
				t.Fatalf("seed %d: events not ordered by superstep: %+v", seed, s.Events)
			}
			prevSS = ev.Superstep
			switch ev.Action {
			case ChaosKill:
				if !alive[ev.Worker] {
					t.Fatalf("seed %d: kill of already-dead worker %d", seed, ev.Worker)
				}
				alive[ev.Worker] = false
				if countTrue(alive) == 0 {
					t.Fatalf("seed %d: kill at ss %d left no live workers", seed, ev.Superstep)
				}
			case ChaosRestart:
				if alive[ev.Worker] {
					t.Fatalf("seed %d: restart of live worker %d", seed, ev.Worker)
				}
				alive[ev.Worker] = true
			case ChaosDelay:
				if ev.Delay <= 0 {
					t.Fatalf("seed %d: delay event with no delay: %+v", seed, ev)
				}
				if ev.Partition < 0 || ev.Partition >= 8 {
					t.Fatalf("seed %d: delay partition out of range: %+v", seed, ev)
				}
			case ChaosReset:
				if ev.Partition < 0 || ev.Partition >= 8 {
					t.Fatalf("seed %d: reset partition out of range: %+v", seed, ev)
				}
			}
		}
		if n := countTrue(alive); n != 3 {
			t.Fatalf("seed %d: run ends with %d/3 workers alive", seed, n)
		}
	}
}

func countTrue(m map[int]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// TestChaosPlanSingleWorker: with one worker there is nothing to kill
// without violating the last-live-worker rule; the plan degrades to
// network noise only.
func TestChaosPlanSingleWorker(t *testing.T) {
	s := ChaosPlan(7, 1, 20, 4)
	for _, ev := range s.Events {
		if ev.Action == ChaosKill || ev.Action == ChaosRestart {
			t.Fatalf("single-worker plan contains %v: %+v", ev.Action, ev)
		}
	}
}

// TestChaosNetRules: delay/reset events translate one-to-one into armed
// injector rules on the send path; kills and restarts do not.
func TestChaosNetRules(t *testing.T) {
	s := ChaosSchedule{Seed: 1, Workers: 2, Supersteps: 10, Events: []ChaosEvent{
		{Superstep: 2, Action: ChaosKill, Worker: 0},
		{Superstep: 3, Action: ChaosDelay, Partition: 1, Delay: 2e6},
		{Superstep: 4, Action: ChaosRestart, Worker: 0},
		{Superstep: 5, Action: ChaosReset, Partition: 3},
	}}
	rules := s.NetRules()
	if len(rules) != 2 {
		t.Fatalf("want 2 net rules, got %d: %+v", len(rules), rules)
	}
	if rules[0].Site != SiteNetSend || rules[0].Delay != 2e6 || rules[0].Partition != 1 || rules[0].Superstep != 3 {
		t.Fatalf("bad delay rule: %+v", rules[0])
	}
	if rules[1].Site != SiteNetSend || !rules[1].Reset || rules[1].Partition != 3 || rules[1].Superstep != 5 {
		t.Fatalf("bad reset rule: %+v", rules[1])
	}
}
