package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveSPDKnown(t *testing.T) {
	// A = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0]
	s := NewSym(2)
	s.A = []float64{4, 2, 2, 3}
	x, err := s.SolveSPD([]float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.5) > 1e-12 || math.Abs(x[1]) > 1e-12 {
		t.Errorf("x = %v, want [0.5 0]", x)
	}
}

func TestSolveSPDIdentity(t *testing.T) {
	s := NewSym(3)
	s.AddRidge(1)
	b := []float64{1, 2, 3}
	x, err := s.SolveSPD(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Errorf("identity solve: x=%v", x)
		}
	}
}

func TestSolveSPDRejectsIndefinite(t *testing.T) {
	s := NewSym(2)
	s.A = []float64{1, 2, 2, 1} // eigenvalues 3, -1
	if _, err := s.SolveSPD([]float64{1, 1}); err != ErrNotSPD {
		t.Errorf("want ErrNotSPD, got %v", err)
	}
	s2 := NewSym(2)
	if _, err := s2.SolveSPD([]float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestAddOuterBuildsNormalEquations(t *testing.T) {
	s := NewSym(2)
	s.AddOuter([]float64{1, 2}, 1)
	s.AddOuter([]float64{3, 1}, 2)
	// A = [1,2][1,2]^T + 2*[3,1][3,1]^T = [[1+18, 2+6],[2+6, 4+2]]
	want := []float64{19, 8, 8, 6}
	for i, w := range want {
		if math.Abs(s.A[i]-w) > 1e-12 {
			t.Fatalf("A = %v, want %v", s.A, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched AddOuter should panic")
		}
	}()
	s.AddOuter([]float64{1}, 1)
}

// Property: for random SPD systems built as Gram matrices + ridge,
// the residual ||Ax - b|| is tiny.
func TestSolveSPDProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(12)
		s := NewSym(k)
		orig := NewSym(k)
		for i := 0; i < 2*k; i++ {
			v := make([]float64, k)
			for j := range v {
				v[j] = r.NormFloat64()
			}
			s.AddOuter(v, 1)
			orig.AddOuter(v, 1)
		}
		s.AddRidge(0.1)
		orig.AddRidge(0.1)
		b := make([]float64, k)
		for j := range b {
			b[j] = r.NormFloat64()
		}
		x, err := s.SolveSPD(b)
		if err != nil {
			return false
		}
		// residual
		for i := 0; i < k; i++ {
			var ax float64
			for j := 0; j < k; j++ {
				ax += orig.At(i, j) * x[j]
			}
			if math.Abs(ax-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestVecHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("dot wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Errorf("axpy = %v", y)
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("norm wrong")
	}
}
