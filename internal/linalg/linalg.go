// Package linalg provides the small dense linear algebra ALS needs:
// symmetric positive-definite solves of the k×k normal equations
// (A + λI) x = b via Cholesky decomposition, for k in the paper's 5–15
// feature range (§6, ML-20^5..ML-20^15).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Sym is a dense symmetric k×k matrix stored in row-major full form.
type Sym struct {
	K int
	A []float64 // K*K entries
}

// NewSym returns a zero symmetric matrix of order k.
func NewSym(k int) *Sym {
	return &Sym{K: k, A: make([]float64, k*k)}
}

// At returns A[i][j].
func (s *Sym) At(i, j int) float64 { return s.A[i*s.K+j] }

// AddOuter adds w * v vᵀ to the matrix (rank-one update), the accumulation
// step of the ALS normal equations.
func (s *Sym) AddOuter(v []float64, w float64) {
	if len(v) != s.K {
		panic(fmt.Sprintf("linalg: outer product length %d on order-%d matrix", len(v), s.K))
	}
	for i := 0; i < s.K; i++ {
		wi := w * v[i]
		row := s.A[i*s.K : (i+1)*s.K]
		for j := 0; j < s.K; j++ {
			row[j] += wi * v[j]
		}
	}
}

// AddRidge adds λ to the diagonal (Tikhonov regularization).
func (s *Sym) AddRidge(lambda float64) {
	for i := 0; i < s.K; i++ {
		s.A[i*s.K+i] += lambda
	}
}

// ErrNotSPD is returned when Cholesky factorization fails.
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// SolveSPD solves A x = b for symmetric positive-definite A in place,
// destroying A's contents. It returns the solution vector.
func (s *Sym) SolveSPD(b []float64) ([]float64, error) {
	k := s.K
	if len(b) != k {
		return nil, fmt.Errorf("linalg: rhs length %d for order-%d system", len(b), k)
	}
	// Cholesky: A = L Lᵀ, L stored in the lower triangle of A.
	a := s.A
	for j := 0; j < k; j++ {
		d := a[j*k+j]
		for p := 0; p < j; p++ {
			d -= a[j*k+p] * a[j*k+p]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		d = math.Sqrt(d)
		a[j*k+j] = d
		for i := j + 1; i < k; i++ {
			v := a[i*k+j]
			for p := 0; p < j; p++ {
				v -= a[i*k+p] * a[j*k+p]
			}
			a[i*k+j] = v / d
		}
	}
	// Forward substitution: L y = b.
	x := make([]float64, k)
	copy(x, b)
	for i := 0; i < k; i++ {
		for p := 0; p < i; p++ {
			x[i] -= a[i*k+p] * x[p]
		}
		x[i] /= a[i*k+i]
	}
	// Back substitution: Lᵀ x = y.
	for i := k - 1; i >= 0; i-- {
		for p := i + 1; p < k; p++ {
			x[i] -= a[p*k+i] * x[p]
		}
		x[i] /= a[i*k+i]
	}
	return x, nil
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AXPY adds alpha*x to y in place.
func AXPY(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
