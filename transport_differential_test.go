package ariadne_test

import (
	"fmt"
	"testing"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/queries"
	"ariadne/internal/transport"
	"ariadne/internal/value"
)

// The transport differential at the public API boundary: a run whose
// partitions execute on TCP-loopback workers must be indistinguishable from
// the in-process run — bit-identical vertex values, identical message
// accounting, tuple-identical provenance layers, and identical results for
// every paper query, online and offline, at 1 and 2 workers.

// emitSSSP is SSSP plus per-message analytics facts so the ALS monitoring
// queries (prov_error / prov_prediction) have data to chew on, mirroring
// the driver-level differential. It also exercises ProvFact emission across
// the wire.
type emitSSSP struct{ *analytics.SSSP }

func (p emitSSSP) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	for _, m := range msgs {
		peer := value.NewInt(int64(m.Src))
		e := m.Val.Float()
		ctx.EmitProv("prov_error", peer, value.NewFloat(e))
		ctx.EmitProv("prov_prediction", peer, value.NewFloat(e+4))
	}
	return p.SSSP.Compute(ctx, msgs)
}

// paperQueries is the differential query set from the paper (Q1/Q2 lineage
// and trace, Q4-Q6 monitoring, Q9/Q10 ALS monitoring).
func paperQueries() []ariadne.QueryDef {
	return []ariadne.QueryDef{
		queries.CaptureForwardLineage(0),
		queries.BackwardTrace(0, 2),
		queries.PageRankCheck(),
		queries.SilentChange(),
		queries.MonotoneCheck(),
		queries.ALSRangeCheck(),
		queries.ALSErrorIncrease(0.01),
	}
}

func TestTransportDifferentialAPI(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(7, 4, 23))
	if err != nil {
		t.Fatal(err)
	}
	const parts = 8
	onlineDefs := []ariadne.QueryDef{
		queries.PageRankCheck(),
		queries.SilentChange(),
		queries.MonotoneCheck(),
	}
	commonOpts := func() []ariadne.Option {
		opts := []ariadne.Option{
			ariadne.WithMaxSupersteps(30),
			ariadne.WithPartitions(parts),
			ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}),
		}
		for _, def := range onlineDefs {
			opts = append(opts, ariadne.WithOnlineQuery(def))
		}
		return opts
	}

	base, err := ariadne.Run(g, emitSSSP{&analytics.SSSP{}}, commonOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Provenance.Close()

	for _, nw := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers-%d", nw), func(t *testing.T) {
			addrs := make([]string, nw)
			for i := range addrs {
				x, err := engine.NewExecutor(g, emitSSSP{&analytics.SSSP{}}, engine.Config{Partitions: parts})
				if err != nil {
					t.Fatal(err)
				}
				w, err := transport.NewWorker(x, "127.0.0.1:0", nil)
				if err != nil {
					t.Fatal(err)
				}
				go w.Serve()
				t.Cleanup(func() { w.Close() })
				addrs[i] = w.Addr()
			}
			tr, err := transport.DialTCP(transport.TCPConfig{
				Addrs: addrs,
				Fingerprint: transport.Fingerprint{
					Partitions:  parts,
					NumVertices: g.NumVertices(),
					NumEdges:    g.NumEdges(),
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()

			res, err := ariadne.Run(g, emitSSSP{&analytics.SSSP{}},
				append(commonOpts(), ariadne.WithTransport(tr))...)
			if err != nil {
				t.Fatal(err)
			}
			defer res.Provenance.Close()

			assertSameRun(t, "tcp", base, res)
			assertSameProvenance(t, base.Provenance, res.Provenance)
			for _, def := range onlineDefs {
				sameQueryResults(t, res.Query(def.Name), base.Query(def.Name))
			}

			// Every paper query must read identically from both stores.
			// Legs must agree even on evaluability: a query that works on
			// one store and errors on the other is a divergence.
			for _, def := range paperQueries() {
				qb, errB := ariadne.QueryOffline(def, base.Provenance, g, ariadne.ModeLayered, 0)
				qt, errT := ariadne.QueryOffline(def, res.Provenance, g, ariadne.ModeLayered, 0)
				if (errB == nil) != (errT == nil) {
					t.Fatalf("query %s: inproc err=%v, tcp err=%v", def.Name, errB, errT)
				}
				if errB != nil {
					continue // not offline-evaluable; both legs agree
				}
				sameQueryResults(t, qt, qb)
			}
		})
	}
}
