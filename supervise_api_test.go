package ariadne_test

import (
	"errors"
	"testing"
	"time"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/fault"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/queries"
	"ariadne/internal/value"
)

// The supervision suite at the public API boundary: a supervised run under
// injected partition faults must finish with the same analytic result as a
// fault-free run (recovering only the failed partition), and repeated
// capture-side failures must degrade capture — never the analytic — with
// the shed range visible both on Result.CaptureGaps and through PQL.

// gapQuery projects the capture_gap static EDB, the PQL view of degraded-
// mode capture.
func gapQuery() ariadne.QueryDef {
	return ariadne.QueryDef{
		Name:        "gaps",
		Source:      `gap(P, F, T) :- capture_gap(P, F, T).`,
		Env:         analysis.NewEnv(),
		ResultPreds: []string{"gap"},
	}
}

func TestSupervisedPanicDifferentialAPI(t *testing.T) {
	g := rmatGraph(t)
	prog := &analytics.PageRank{Iterations: 10}
	common := []ariadne.Option{
		ariadne.WithMaxSupersteps(11),
		ariadne.WithPartitions(4),
		ariadne.WithOnlineQuery(queries.PageRankCheck()),
	}
	baseline, err := ariadne.Run(g, prog, common...)
	if err != nil {
		t.Fatal(err)
	}

	// PageRank keeps every vertex active, so partition 1 is guaranteed to
	// compute at superstep 3 and the injected panic fires exactly once.
	inj := fault.NewInjector(fault.Matrix(1, 3, 0, 0)["panic"]...)
	supOpts := append(append([]ariadne.Option{}, common...),
		ariadne.WithFault(inj),
		ariadne.WithSupervision(ariadne.SuperviseConfig{MaxRetries: 2, Backoff: time.Microsecond}))
	res, err := ariadne.Run(g, prog, supOpts...)
	if err != nil {
		t.Fatalf("supervised run should absorb the partition panic: %v", err)
	}
	if inj.Fired() != 1 {
		t.Fatalf("injected panic fired %d times, want 1", inj.Fired())
	}
	if res.Stats.PartitionRetries < 1 {
		t.Errorf("PartitionRetries = %d, want >= 1", res.Stats.PartitionRetries)
	}
	sameFinalValues(t, res.Values, baseline.Values)
	sameQueryResults(t, res.Query("q4-pagerank-check"), baseline.Query("q4-pagerank-check"))
	if res.Stats.Supersteps != baseline.Stats.Supersteps {
		t.Errorf("supersteps = %d, want %d", res.Stats.Supersteps, baseline.Stats.Supersteps)
	}
}

func TestDegradedCaptureDifferentialAPI(t *testing.T) {
	g := rmatGraph(t)
	prog := &analytics.PageRank{Iterations: 10}
	common := []ariadne.Option{
		ariadne.WithMaxSupersteps(11),
		ariadne.WithPartitions(4),
	}
	capOpt := func() ariadne.Option {
		return ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{})
	}

	baseline, err := ariadne.Run(g, prog, append([]ariadne.Option{capOpt()}, common...)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.CaptureGaps) != 0 {
		t.Fatalf("fault-free run reported gaps: %v", baseline.CaptureGaps)
	}

	// Three consecutive capture failures on partition 1 with a shed
	// threshold of 2: the first two failures drop the partition's layer
	// slice and trip degraded mode; from then on the partition is shed
	// without consulting the injector again.
	inj := fault.NewInjector(fault.Matrix(1, -1, 0, 3)["capture-fail"]...)
	degOpts := append([]ariadne.Option{capOpt(),
		ariadne.WithFault(inj),
		ariadne.WithSupervision(ariadne.SuperviseConfig{
			MaxRetries:          2,
			Backoff:             time.Microsecond,
			DegradeCaptureAfter: 2,
		})}, common...)
	res, err := ariadne.Run(g, prog, degOpts...)
	if err != nil {
		t.Fatalf("degraded-mode run should complete: %v", err)
	}
	if inj.Fired() == 0 {
		t.Fatal("capture fault never fired")
	}

	// Theorem 5.4 non-interference: shedding provenance must not perturb
	// the analytic by a single bit.
	sameFinalValues(t, res.Values, baseline.Values)

	if len(res.CaptureGaps) == 0 {
		t.Fatal("degraded run reported no capture gaps")
	}
	for _, gap := range res.CaptureGaps {
		if gap.Partition != 1 {
			t.Errorf("gap on partition %d, want 1: %+v", gap.Partition, gap)
		}
	}
	// The shed range must span from the first failure to the last
	// superstep: shedding is permanent.
	last := res.CaptureGaps[len(res.CaptureGaps)-1]
	if last.To != res.Stats.Supersteps-1 {
		t.Errorf("gap ends at superstep %d, want %d (permanent shed)", last.To, res.Stats.Supersteps-1)
	}

	// The same gaps are queryable from PQL as capture_gap(P, F, T).
	qr, err := ariadne.QueryOffline(gapQuery(), res.Provenance, g, ariadne.ModeLayered, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := ariadne.Tuples(qr, "gap")
	if len(rows) != len(res.CaptureGaps) {
		t.Fatalf("PQL gap rows = %d, want %d (%v)", len(rows), len(res.CaptureGaps), rows)
	}
	for i, gap := range res.CaptureGaps {
		want := []ariadne.Value{
			value.NewInt(int64(gap.Partition)),
			value.NewInt(int64(gap.From)),
			value.NewInt(int64(gap.To)),
		}
		for c := range want {
			if !rows[i][c].Equal(want[c]) {
				t.Errorf("gap row %d col %d = %v, want %v", i, c, rows[i][c], want[c])
			}
		}
	}

	// A fault-free provenance query over the degraded store still works on
	// the partitions that kept capturing.
	if _, err := ariadne.QueryOffline(queries.PageRankCheck(), res.Provenance, g, ariadne.ModeLayered, 0); err != nil {
		t.Errorf("offline query over degraded store: %v", err)
	}
}

// TestConcurrentMultiPartitionDegradeAPI trips degraded mode on two
// partitions in the same superstep. The shed bookkeeping is written from
// concurrent partition goroutines, so this pins down that the gap report
// stays complete (both partitions present, every shed superstep covered,
// permanent through the last superstep) and non-overlapping (no superstep
// claimed twice for one partition), both on Result.CaptureGaps and through
// the capture_gap EDB.
func TestConcurrentMultiPartitionDegradeAPI(t *testing.T) {
	g := rmatGraph(t)
	prog := &analytics.PageRank{Iterations: 10}
	common := []ariadne.Option{
		ariadne.WithMaxSupersteps(11),
		ariadne.WithPartitions(4),
	}
	baseline, err := ariadne.Run(g, prog, append([]ariadne.Option{
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}),
	}, common...)...)
	if err != nil {
		t.Fatal(err)
	}

	// Capture failures on partitions 1 and 2 every superstep from the
	// start: both cross the shed threshold in the same superstep.
	rules := append(fault.Matrix(1, -1, 0, 3)["capture-fail"],
		fault.Matrix(2, -1, 0, 3)["capture-fail"]...)
	inj := fault.NewInjector(rules...)
	res, err := ariadne.Run(g, prog, append([]ariadne.Option{
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}),
		ariadne.WithFault(inj),
		ariadne.WithSupervision(ariadne.SuperviseConfig{
			MaxRetries:          2,
			Backoff:             time.Microsecond,
			DegradeCaptureAfter: 2,
		})}, common...)...)
	if err != nil {
		t.Fatalf("multi-partition degraded run should complete: %v", err)
	}
	sameFinalValues(t, res.Values, baseline.Values)

	// Completeness: both partitions report a gap, and each partition's shed
	// range reaches the final superstep (shedding is permanent).
	covered := map[int]map[int]int{} // partition -> superstep -> claim count
	for _, gap := range res.CaptureGaps {
		if gap.Partition != 1 && gap.Partition != 2 {
			t.Errorf("gap on partition %d, want only 1 and 2: %+v", gap.Partition, gap)
		}
		if gap.From > gap.To {
			t.Errorf("inverted gap range: %+v", gap)
		}
		if covered[gap.Partition] == nil {
			covered[gap.Partition] = map[int]int{}
		}
		for ss := gap.From; ss <= gap.To; ss++ {
			covered[gap.Partition][ss]++
		}
	}
	for _, p := range []int{1, 2} {
		if covered[p] == nil {
			t.Fatalf("partition %d degraded but reported no gap: %v", p, res.CaptureGaps)
		}
		if covered[p][res.Stats.Supersteps-1] == 0 {
			t.Errorf("partition %d gap does not reach the last superstep: %v", p, res.CaptureGaps)
		}
		// Non-overlapping: no superstep is claimed by two gap rows.
		for ss, n := range covered[p] {
			if n > 1 {
				t.Errorf("partition %d superstep %d covered by %d gap rows", p, ss, n)
			}
		}
	}

	// The capture_gap EDB must agree with the report row for row.
	qr, err := ariadne.QueryOffline(gapQuery(), res.Provenance, g, ariadne.ModeLayered, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := ariadne.Tuples(qr, "gap")
	if len(rows) != len(res.CaptureGaps) {
		t.Fatalf("PQL gap rows = %d, want %d (%v)", len(rows), len(res.CaptureGaps), rows)
	}
	for i, gap := range res.CaptureGaps {
		want := []ariadne.Value{
			value.NewInt(int64(gap.Partition)),
			value.NewInt(int64(gap.From)),
			value.NewInt(int64(gap.To)),
		}
		for c := range want {
			if !rows[i][c].Equal(want[c]) {
				t.Errorf("gap row %d col %d = %v, want %v", i, c, rows[i][c], want[c])
			}
		}
	}
}

// Without supervision the same capture fault is fatal — degradation is an
// opt-in contract, not a silent default.
func TestCaptureFaultFatalWithoutSupervision(t *testing.T) {
	g := rmatGraph(t)
	inj := fault.NewInjector(fault.Matrix(1, -1, 0, 3)["capture-fail"]...)
	_, err := ariadne.Run(g, &analytics.PageRank{Iterations: 10},
		ariadne.WithMaxSupersteps(11),
		ariadne.WithPartitions(4),
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}),
		ariadne.WithFault(inj))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("unsupervised capture fault = %v, want ErrInjected", err)
	}
}

// aggProg exercises global aggregators through the public API: each round
// folds a per-vertex contribution into an AggSum and mixes the previous
// superstep's merged value back into the vertex value, so any divergence in
// restored aggregator state shows up in the final values.
type aggProg struct{ rounds int }

func (p *aggProg) InitialValue(*ariadne.Graph, ariadne.VertexID) ariadne.Value {
	return value.NewFloat(0)
}

func (p *aggProg) Compute(ctx *engine.Context, _ []engine.IncomingMessage) error {
	ctx.AggregateFloat("sum", engine.AggSum, float64(ctx.ID()+1)*float64(ctx.Superstep()+1))
	prev, _ := ctx.Aggregated().Float("sum")
	ctx.SetValue(value.NewFloat(ctx.Value().Float() + prev))
	if ctx.Superstep() < p.rounds {
		ctx.SendMessage(ctx.ID(), value.NewInt(1)) // last round sends nothing: the run quiesces
	}
	return nil
}

// TestResumeAggregatorsAPI crashes an aggregator-carrying run between
// checkpoints and resumes it: the restored run must reproduce both the
// final vertex values and the final merged aggregator readings.
func TestResumeAggregatorsAPI(t *testing.T) {
	g := chain(t, 16)
	prog := &aggProg{rounds: 8}

	baseline, err := ariadne.Run(g, prog)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, ok := baseline.Aggregated.Float("sum")
	if !ok {
		t.Fatal("baseline has no merged sum aggregator")
	}

	dir := t.TempDir()
	ck := ariadne.WithCheckpoint(dir, 2)
	_, err = ariadne.Run(g, prog, ck,
		ariadne.WithFault(fault.NewInjector(fault.PanicAt(5, -1))))
	var ce *ariadne.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}

	res, err := ariadne.Resume(g, prog, ck)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom == 0 {
		t.Error("Resume did not restart from a checkpoint")
	}
	sameFinalValues(t, res.Values, baseline.Values)
	gotSum, ok := res.Aggregated.Float("sum")
	if !ok || gotSum != wantSum {
		t.Errorf("resumed sum aggregator = %v (ok=%v), want %v", gotSum, ok, wantSum)
	}
}
