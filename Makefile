GO ?= go

.PHONY: all build test bench vet race ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# ci is what .github/workflows/ci.yml runs.
ci: vet race

clean:
	$(GO) clean ./...
