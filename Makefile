GO ?= go

.PHONY: all build test bench bench-micro bench-store bench-full vet race ci fault-matrix fault-matrix-net chaos trace-demo clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench runs the driver benchmarks and emits per-superstep BENCH_*.json
# profiles via the instrumented CLI (-stats-json); CI archives the JSON.
# The traced run is a distributed TCP-loopback paper query with a dropped
# exchange injected so every transport bucket (serialize/wire/worker-compute/
# retry) is nonzero in the archived TRACE_pagerank.json timeline.
bench: bench-micro
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/driver/
	$(GO) run ./cmd/ariadne run -analytic pagerank -dataset IN-04 -supersteps 10 \
		-online q4 -stats-json BENCH_pagerank.json
	$(GO) run ./cmd/ariadne run -analytic sssp -dataset IN-04 -capture full \
		-stats-json BENCH_sssp.json
	$(GO) run ./cmd/ariadne run -analytic pagerank -dataset IN-04 -supersteps 10 \
		-transport tcp -workers 2 -partitions 4 -net-deadline 250ms \
		-online q4 -faults "net.send:mode=drop:part=1:ss=2:times=1" \
		-trace-out TRACE_pagerank.json -stats-json BENCH_trace_pagerank.json

# bench-micro runs the barrier, spill-pipeline, and query-evaluation
# microbenchmarks and feeds them through cmd/benchjson, which writes
# BENCH_micro.json and fails on a regression of the hardware-independent
# ratios (sequential/parallel barrier-phase time, sync/async spill time,
# sequential/parallel eval-phase time, sequential/pipelined layered run
# time). The committed BENCH_micro.json is the single-core container
# baseline; CI archives the fresh one.
bench-micro:
	$(GO) test -run '^$$' -bench 'BenchmarkBarrier' -benchmem -count 1 \
		./internal/engine/ > bench-micro.out
	$(GO) test -run '^$$' -bench 'BenchmarkSpillPipeline' -benchmem -count 1 \
		./internal/provenance/ >> bench-micro.out
	$(GO) test -run '^$$' -bench 'BenchmarkParallelEval' -benchmem -count 1 \
		./internal/pql/eval/ >> bench-micro.out
	$(GO) test -run '^$$' -bench 'BenchmarkLayeredEval$$' -benchmem -count 1 \
		./internal/driver/ >> bench-micro.out
	$(GO) test -run '^$$' -bench 'BenchmarkTransportRun|BenchmarkTraceRun|BenchmarkWireFrame' -benchmem -count 1 \
		./internal/transport/ >> bench-micro.out
	$(GO) test -run '^$$' -bench 'BenchmarkSpanDisabled' -benchmem -count 1 \
		./internal/obs/ >> bench-micro.out
	$(GO) test -run '^$$' -bench 'BenchmarkStoreFormat' -benchmem -count 1 \
		./internal/provenance/ >> bench-micro.out
	$(GO) test -run '^$$' -bench 'BenchmarkLayeredReplay' -benchmem -count 1 \
		./internal/driver/ >> bench-micro.out
	$(GO) run ./cmd/benchjson -out BENCH_micro.json \
		-max-transport-overhead 1.5 -min-bytes-reduction 2 < bench-micro.out
	rm -f bench-micro.out

# bench-store runs just the provenance-storage benchmarks — spill pipeline,
# v1-vs-v2 on-disk density, projected-vs-unprojected layered replay — and
# gates their three ratios (spill_async_speedup, bytes_per_tuple_reduction,
# layered_replay_facts_s) via cmd/benchjson -expect, writing BENCH_store.json.
# Faster than bench-micro when iterating on the layer file format; CI runs it
# in the bench job and archives the JSON.
bench-store:
	$(GO) test -run '^$$' -bench 'BenchmarkSpillPipeline|BenchmarkStoreFormat' -benchmem -count 1 \
		./internal/provenance/ > bench-store.out
	$(GO) test -run '^$$' -bench 'BenchmarkLayeredReplay' -benchmem -count 1 \
		./internal/driver/ >> bench-store.out
	$(GO) run ./cmd/benchjson -out BENCH_store.json \
		-expect spill_async_speedup,bytes_per_tuple_reduction,layered_replay_facts_s \
		< bench-store.out
	rm -f bench-store.out

bench-full:
	$(GO) test -bench=. -benchmem ./...

# fault-matrix exercises the partition-targeted fault scenarios end to end
# under the race detector: the supervision/fault test suites, then three CLI
# runs — an injected partition panic recovered by retry, a hung partition
# cancelled by its deadline, and repeated capture failures shedding into
# degraded mode. Each CLI run writes its supervision trace and capture gaps
# to FAULT_*.json; CI archives the JSON.
fault-matrix:
	$(GO) test -race -run 'Supervis|Degrade|HitWait|Matrix|CaptureFault' \
		./internal/supervise/ ./internal/fault/ ./internal/engine/ ./internal/capture/ .
	$(GO) run -race ./cmd/ariadne run -analytic pagerank -dataset IN-04 -supersteps 10 \
		-supervise -faults "compute:mode=panic:ss=3:part=0" \
		-trace-buf 1024 -stats-json FAULT_panic.json
	$(GO) run -race ./cmd/ariadne run -analytic pagerank -dataset IN-04 -supersteps 10 \
		-supervise -partition-deadline 250ms -faults "compute:mode=hang:ss=4:part=0" \
		-trace-buf 1024 -stats-json FAULT_hang.json
	$(GO) run -race ./cmd/ariadne run -analytic sssp -dataset IN-04 -capture full \
		-supervise -degrade-capture 2 -faults "capture:part=0:times=3" \
		-trace-buf 1024 -stats-json FAULT_degrade.json

# fault-matrix-net exercises the network fault sites end to end under the
# race detector: the transport test suite (wire codec, TCP differential,
# deterministic net fault matrix including the peer-mesh scenarios, worker-
# kill recovery, heartbeats), then four distributed CLI runs over spawned
# TCP-loopback workers — a dropped exchange recovered by retransmit, a
# connection reset recovered by reconnect, an unreachable partition
# recovered by local fallback with its capture shed into a queryable gap,
# and a worker-to-worker fragment dropped on the peer mesh (injected
# worker-side via -worker-faults) recovered by the master-relay fallback.
# Each CLI run writes its trace and capture gaps to FAULT_net_*.json; CI
# archives the JSON.
fault-matrix-net:
	$(GO) test -race -run 'Transport|Net|Wire|WorkerKilled|Heartbeat|Handshake' \
		./internal/transport/ ./internal/fault/ .
	$(GO) run -race ./cmd/ariadne run -analytic pagerank -dataset IN-04 -supersteps 10 \
		-transport tcp -workers 2 -partitions 4 -net-deadline 250ms \
		-faults "net.send:mode=drop:part=1:ss=2" \
		-trace-buf 1024 -stats-json FAULT_net_drop.json
	$(GO) run -race ./cmd/ariadne run -analytic pagerank -dataset IN-04 -supersteps 10 \
		-transport tcp -workers 2 -partitions 4 -net-deadline 250ms \
		-faults "net.send:mode=reset:part=1:ss=3" \
		-trace-buf 1024 -stats-json FAULT_net_reset.json
	$(GO) run -race ./cmd/ariadne run -analytic sssp -dataset IN-04 -capture full \
		-transport tcp -workers 2 -partitions 4 -net-deadline 250ms -max-retries 1 \
		-faults "net.send:mode=drop:part=1:times=1048576" \
		-trace-buf 1024 -stats-json FAULT_net_fallback.json
	$(GO) run -race ./cmd/ariadne run -analytic pagerank -dataset IN-04 -supersteps 10 \
		-transport tcp -workers 2 -partitions 4 -net-deadline 250ms \
		-worker-faults "peer.send:mode=drop:part=1:ss=2:times=1" \
		-trace-buf 1024 -stats-json FAULT_net_peer.json

# chaos runs the failover test suites under the race detector, then the
# seeded chaos-soak harness: three seeds, three workers each, a
# deterministic schedule of worker kills/restarts plus link delays/resets
# played out at superstep barriers — seed 3 with -kill-mid, which arms each
# kill to land mid-delta-stream and checkpoints the run so recovery
# re-hydrates worker-resident state from the last checkpoint blob plus
# replayed supersteps. Each soak asserts the disturbed run is bit-identical
# to an undisturbed reference — values, provenance layers, zero capture
# gaps — and that the failover counters account for the schedule, writing
# the verdict to CHAOS_<seed>.json; CI archives the JSON. A failing seed
# replays exactly: the schedule is a pure function of the seed.
chaos:
	$(GO) test -race -run 'Failover|WorkerKilled|AllWorkers|Drain|Chaos|ReplyCache|ReplyDedup|PoolState' \
		./internal/transport/ ./internal/fault/ .
	$(GO) run -race ./cmd/chaos -seed 1 -workers 3 -out CHAOS_1.json
	$(GO) run -race ./cmd/chaos -seed 2 -workers 3 -out CHAOS_2.json
	$(GO) run -race ./cmd/chaos -seed 3 -workers 3 -kill-mid -out CHAOS_3.json

# trace-demo produces a span timeline you can open in Perfetto
# (https://ui.perfetto.dev) or chrome://tracing: a distributed PageRank run
# over two spawned TCP-loopback workers with one exchange dropped at
# superstep 2, so the retry/backoff bucket shows up in the timeline. See
# README "Tracing a distributed run".
trace-demo:
	$(GO) run ./cmd/ariadne run -analytic pagerank -dataset IN-04 -supersteps 10 \
		-transport tcp -workers 2 -partitions 4 -net-deadline 250ms \
		-capture full -faults "net.send:mode=drop:part=1:ss=2:times=1" \
		-trace-out TRACE_demo.json -stats-json TRACE_demo_stats.json
	@echo "open TRACE_demo.json in https://ui.perfetto.dev or chrome://tracing"

# ci is what .github/workflows/ci.yml runs.
ci: vet race

clean:
	$(GO) clean ./...
