GO ?= go

.PHONY: all build test bench bench-full vet race ci clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench runs the driver benchmarks and emits per-superstep BENCH_*.json
# profiles via the instrumented CLI (-stats-json); CI archives the JSON.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/driver/
	$(GO) run ./cmd/ariadne run -analytic pagerank -dataset IN-04 -supersteps 10 \
		-online q4 -stats-json BENCH_pagerank.json
	$(GO) run ./cmd/ariadne run -analytic sssp -dataset IN-04 -capture full \
		-stats-json BENCH_sssp.json

bench-full:
	$(GO) test -bench=. -benchmem ./...

# ci is what .github/workflows/ci.yml runs.
ci: vet race

clean:
	$(GO) clean ./...
