package ariadne_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/fault"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/queries"
)

// The differential crash-recovery suite: a run crashed by an injected worker
// panic and resumed from its last checkpoint must finish with final vertex
// values *byte-identical* to an uninterrupted run, and online query results
// equal to the no-failure run's — the whole point of checkpointing observer
// state alongside engine state.

func rmatGraph(t *testing.T) *ariadne.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6, 7))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func chain(t *testing.T, n int) *ariadne.Graph {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: ariadne.VertexID(i), Dst: ariadne.VertexID(i + 1), Weight: 1})
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sameFinalValues(t *testing.T, got, want []ariadne.Value) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("value count %d != %d", len(got), len(want))
	}
	for i := range got {
		g := got[i].AppendBinary(nil)
		w := want[i].AppendBinary(nil)
		if string(g) != string(w) {
			t.Fatalf("value[%d] = %v, want %v (binary encodings differ)", i, got[i], want[i])
		}
	}
}

func sameQueryResults(t *testing.T, got, want *ariadne.QueryResult) {
	t.Helper()
	gr, wr := got.DerivedRelations(), want.DerivedRelations()
	if len(gr) != len(wr) {
		t.Fatalf("derived relations %v != %v", gr, wr)
	}
	for i := range gr {
		if gr[i] != wr[i] {
			t.Fatalf("relation %s: %d tuples, want %s: %d", gr[i].Name, gr[i].Count, wr[i].Name, wr[i].Count)
		}
		gt := ariadne.Tuples(got, gr[i].Name)
		wt := ariadne.Tuples(want, wr[i].Name)
		for j := range gt {
			if len(gt[j]) != len(wt[j]) {
				t.Fatalf("%s row %d arity differs", gr[i].Name, j)
			}
			for k := range gt[j] {
				if !gt[j][k].Equal(wt[j][k]) {
					t.Fatalf("%s row %d col %d: %v != %v", gr[i].Name, j, k, gt[j][k], wt[j][k])
				}
			}
		}
	}
}

// crashAndResume runs prog twice — once clean as the baseline, once with a
// panic injected at crashSS plus checkpoints — asserts the crash surfaces as
// a CrashError, resumes, and compares everything.
func crashAndResume(t *testing.T, g *ariadne.Graph, prog ariadne.Program, crashSS int, def ariadne.QueryDef, extra ...ariadne.Option) {
	t.Helper()
	baseOpts := append([]ariadne.Option{ariadne.WithOnlineQuery(def)}, extra...)
	baseline, err := ariadne.Run(g, prog, baseOpts...)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckOpts := append(append([]ariadne.Option{}, baseOpts...), ariadne.WithCheckpoint(dir, 2))
	crashOpts := append(append([]ariadne.Option{}, ckOpts...),
		ariadne.WithFault(fault.NewInjector(fault.PanicAt(crashSS, -1))))

	_, err = ariadne.Run(g, prog, crashOpts...)
	var ce *ariadne.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("injected panic at superstep %d: got %v, want CrashError", crashSS, err)
	}
	if ce.Superstep != crashSS {
		t.Errorf("crash culprit superstep = %d, want %d", ce.Superstep, crashSS)
	}
	if !errors.Is(err, ariadne.ErrComputePanic) {
		t.Errorf("crash cause should be ErrComputePanic through the API boundary: %v", err)
	}

	res, err := ariadne.Resume(g, prog, ckOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedFrom == 0 {
		t.Error("Resume did not restart from a checkpoint")
	}
	sameFinalValues(t, res.Values, baseline.Values)
	sameQueryResults(t, res.Query(def.Name), baseline.Query(def.Name))
	if res.Stats.Supersteps != baseline.Stats.Supersteps {
		t.Errorf("supersteps = %d, want %d", res.Stats.Supersteps, baseline.Stats.Supersteps)
	}
	if res.Stats.MessagesSent != baseline.Stats.MessagesSent {
		t.Errorf("messages = %d, want %d", res.Stats.MessagesSent, baseline.Stats.MessagesSent)
	}
}

func TestCrashRecoveryPageRankQ4(t *testing.T) {
	// The crash superstep is drawn from a seeded RNG: deterministic per test
	// binary, but not hand-picked to a convenient barrier.
	crashSS := 2 + rand.New(rand.NewSource(4)).Intn(14)
	prog := &analytics.PageRank{Iterations: 20}
	crashAndResume(t, rmatGraph(t), prog, crashSS,
		queries.PageRankCheck(), ariadne.WithMaxSupersteps(21))
}

// TestCrashRecoveryPageRankApt covers the interpretive online path (the apt
// query aggregates, so it cannot compile to a query vertex program): the
// evaluator's aggregate tables and the feeder's retention maps must survive
// the crash/resume cycle.
func TestCrashRecoveryPageRankApt(t *testing.T) {
	crashSS := 2 + rand.New(rand.NewSource(6)).Intn(10)
	prog := &analytics.PageRank{Iterations: 14}
	crashAndResume(t, rmatGraph(t), prog, crashSS,
		queries.Apt(0.01, nil), ariadne.WithMaxSupersteps(15))
}

func TestCrashRecoverySSSPQ5(t *testing.T) {
	crashSS := 2 + rand.New(rand.NewSource(5)).Intn(20)
	crashAndResume(t, chain(t, 30), &analytics.SSSP{Source: 0}, crashSS,
		queries.MonotoneCheck())
}

// TestCrashRecoveryWithCapture checks observer-watermark recovery: provenance
// captured with SpillAll survives a crash on disk, the resumed run reattaches
// it, and the captured graph equals the no-failure capture.
func TestCrashRecoveryWithCapture(t *testing.T) {
	g := chain(t, 24)
	prog := &analytics.SSSP{Source: 0}

	baseDir := t.TempDir()
	baseline, err := ariadne.Run(g, prog, ariadne.WithCaptureQuery(queries.CaptureFull(),
		ariadne.StoreConfig{SpillAll: true, SpillDir: baseDir}))
	if err != nil {
		t.Fatal(err)
	}
	defer baseline.Provenance.Close()

	spillDir, ckDir := t.TempDir(), t.TempDir()
	capOpt := ariadne.WithCaptureQuery(queries.CaptureFull(),
		ariadne.StoreConfig{SpillAll: true, SpillDir: spillDir})
	_, err = ariadne.Run(g, prog, capOpt, ariadne.WithCheckpoint(ckDir, 3),
		ariadne.WithFault(fault.NewInjector(fault.PanicAt(11, -1))))
	var ce *ariadne.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}

	res, err := ariadne.Resume(g, prog, capOpt, ariadne.WithCheckpoint(ckDir, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Provenance.Close()
	sameFinalValues(t, res.Values, baseline.Values)
	if res.Provenance.NumLayers() != baseline.Provenance.NumLayers() {
		t.Fatalf("layers = %d, want %d", res.Provenance.NumLayers(), baseline.Provenance.NumLayers())
	}
	if res.Provenance.TotalTuples() != baseline.Provenance.TotalTuples() {
		t.Errorf("tuples = %d, want %d", res.Provenance.TotalTuples(), baseline.Provenance.TotalTuples())
	}
	// The recovered store answers offline queries identically.
	qb, err := ariadne.QueryOffline(queries.MonotoneCheck(), baseline.Provenance, g, ariadne.ModeLayered, 0)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := ariadne.QueryOffline(queries.MonotoneCheck(), res.Provenance, g, ariadne.ModeLayered, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameQueryResults(t, qr, qb)
}

func TestCrashCulpritSurvivesAPIBoundary(t *testing.T) {
	_, err := ariadne.Run(chain(t, 10), &analytics.SSSP{Source: 0},
		ariadne.WithFaultSpec("compute:mode=panic:ss=3:vertex=3"))
	var ce *ariadne.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError through ariadne.Run, got %v", err)
	}
	if ce.Vertex != 3 || ce.Superstep != 3 {
		t.Errorf("culprit = vertex %d superstep %d, want vertex 3 superstep 3", ce.Vertex, ce.Superstep)
	}
	if !errors.Is(err, ariadne.ErrComputePanic) {
		t.Errorf("errors.Is(err, ErrComputePanic) = false: %v", err)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ariadne.Run(chain(t, 10), &analytics.SSSP{Source: 0}, ariadne.WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run = %v, want context.Canceled", err)
	}
}

func TestResumeWithoutCheckpointFails(t *testing.T) {
	if _, err := ariadne.Resume(chain(t, 5), &analytics.SSSP{Source: 0}); err == nil {
		t.Fatal("Resume without WithCheckpoint should fail")
	}
}
