// lineage-debugging shows Ariadne's debugging workflow (§6.2.1, §6.3):
//
//  1. An always-on monitoring query (Query 5) catches a corrupted input —
//     a negative edge weight — *while* SSSP runs, without crashing it.
//  2. Backward lineage (Queries 10-12) traces an affected output vertex
//     back to the superstep-0 inputs that influenced it.
//  3. Forward lineage (Query 3 capture) shows the blast radius of the
//     corrupted vertex.
package main

import (
	"fmt"
	"log"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/queries"
)

func main() {
	clean, err := gen.RMAT(gen.DefaultRMAT(10, 8, 99))
	if err != nil {
		log.Fatal(err)
	}
	// Corrupt one in 200 edge weights (negated), like a bad ETL step.
	g, err := gen.CorruptWeights(clean, 200)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. Online monitoring flags the corruption. ---
	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithMaxSupersteps(25),
		ariadne.WithOnlineQuery(queries.MonotoneCheck()))
	if err != nil {
		log.Fatal(err)
	}
	failures := ariadne.Tuples(res.Query("q5-monotone-check"), "check_failed")
	fmt.Printf("monitoring caught %d violations while SSSP ran\n", len(failures))
	if len(failures) == 0 {
		log.Fatal("expected violations on corrupted input")
	}
	suspect := graph.VertexID(failures[0][0].Int())
	fmt.Printf("first suspect: vertex %d (superstep %v)\n", suspect, failures[0][len(failures[0])-1])

	// --- 2. Backward lineage of the suspect over custom provenance. ---
	cap, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithMaxSupersteps(25),
		ariadne.WithCaptureQuery(queries.CaptureBackwardCustom(), ariadne.StoreConfig{}))
	if err != nil {
		log.Fatal(err)
	}
	store := cap.Provenance
	// Find the last superstep the suspect was active in.
	sigma := -1
	for i := store.NumLayers() - 1; i >= 0 && sigma < 0; i-- {
		layer, err := store.Layer(i)
		if err != nil {
			log.Fatal(err)
		}
		for _, rec := range layer.Records {
			if rec.Vertex == suspect {
				sigma = layer.Superstep
				break
			}
		}
	}
	if sigma < 0 {
		log.Fatalf("suspect %d not in provenance", suspect)
	}
	trace, err := ariadne.QueryOffline(queries.BackwardTraceCustom(suspect, sigma), store, g, ariadne.ModeLayered, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backward trace (Query 12): %d provenance nodes, %d superstep-0 inputs influenced vertex %d\n",
		ariadne.Count(trace, "back_trace"), ariadne.Count(trace, "back_lineage"), suspect)

	// --- 3. Forward lineage: the corrupted vertex's blast radius. ---
	fwd, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithMaxSupersteps(25),
		ariadne.WithCaptureQuery(queries.CaptureForwardLineage(suspect), ariadne.StoreConfig{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forward lineage (Query 3 capture): vertex %d influenced %d of %d vertices (%.1f%% of the graph)\n",
		suspect, fwd.Provenance.DistinctVertices(), g.NumVertices(),
		100*float64(fwd.Provenance.DistinctVertices())/float64(g.NumVertices()))
	fmt.Printf("capture sizes: backward-custom %dKB vs forward-lineage %dKB\n",
		store.TotalBytes()/1024, fwd.Provenance.TotalBytes()/1024)
}
