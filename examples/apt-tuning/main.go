// apt-tuning reproduces the paper's motivating scenario (§2.2, §6.2.2):
// use the apt provenance query to decide, per analytic, whether the
// approximate optimization (skip messaging on small updates) is safe, then
// apply it and measure speedup and error.
//
// Expected outcome (the paper's):
//   - PageRank at ε=0.01: many safe vertices, no unsafe ones -> optimize.
//   - SSSP at ε=0.1: many safe vertices -> optimize.
//   - WCC at ε=1: every skip is unsafe -> do NOT optimize (and the forced
//     "optimized" run corrupts labels badly, ~0.9 in the paper).
package main

import (
	"fmt"
	"log"
	"math"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/gen"
	"ariadne/internal/queries"
)

func main() {
	g, err := gen.RMAT(gen.DefaultRMAT(11, 16, 7))
	if err != nil {
		log.Fatal(err)
	}
	u := g.Undirected()
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// --- Ask the apt question online for each analytic. ---
	type probe struct {
		name string
		prog ariadne.Program
		g    *ariadne.Graph
		eps  float64
		opts []ariadne.Option
	}
	probes := []probe{
		{"PageRank", &analytics.PageRank{}, g, 0.01, []ariadne.Option{ariadne.WithMaxSupersteps(21)}},
		{"SSSP", &analytics.SSSP{Source: 0}, g, 0.1, nil},
		{"WCC", analytics.WCC{}, u, 1, nil},
	}
	for _, p := range probes {
		res, err := ariadne.Run(p.g, p.prog,
			append(p.opts, ariadne.WithOnlineQuery(queries.Apt(p.eps, nil)))...)
		if err != nil {
			log.Fatal(err)
		}
		apt := res.Query("apt")
		safe, unsafe := ariadne.Count(apt, "safe"), ariadne.Count(apt, "unsafe")
		executions := 0
		for _, a := range res.Stats.ActiveVertices {
			executions += a
		}
		frac := float64(safe) / float64(executions)
		verdict := "OPTIMIZE"
		switch {
		case unsafe > safe/10:
			verdict = "DO NOT OPTIMIZE (unsafe skips)"
		case frac < 0.05:
			verdict = "NOT WORTH IT (almost no safe skips)"
		}
		fmt.Printf("%-9s eps=%-5v safe=%-6d unsafe=%-6d safe-frac=%4.1f%% => %s\n",
			p.name, p.eps, safe, unsafe, 100*frac, verdict)
	}

	// --- Apply the optimization and measure (Fig 10, Tables 5 & 6). ---
	fmt.Println("\napplying the optimization:")

	// PageRank: exact vs delta formulation at ε=0.01.
	exactT, exact := timeRun(g, &analytics.PageRank{}, ariadne.WithMaxSupersteps(21))
	optT, opt := timeRun(g, &analytics.DeltaPageRank{Epsilon: 0.01}, ariadne.WithMaxSupersteps(21))
	fmt.Printf("PageRank: speedup %.2fx, relative L2 error %.1e\n",
		float64(exactT)/float64(optT), relErr(exact.Values, opt.Values, 2))

	// SSSP: suppress small improvements at ε=0.1.
	apx, err := analytics.NewApproximate(&analytics.SSSP{Source: 0}, analytics.AbsDiff, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	exactT, exact = timeRun(g, &analytics.SSSP{Source: 0})
	optT, opt = timeRun(g, apx)
	fmt.Printf("SSSP:     speedup %.2fx, relative L1 error %.1e\n",
		float64(exactT)/float64(optT), relErr(exact.Values, opt.Values, 1))

	// WCC: the apt query said no; forcing it shows why.
	apxW, _ := analytics.NewApproximate(analytics.WCC{}, analytics.AbsDiff, 1)
	_, exact = timeRun(u, analytics.WCC{})
	_, opt = timeRun(u, apxW)
	diff := 0
	for i := range exact.Values {
		if !exact.Values[i].Equal(opt.Values[i]) {
			diff++
		}
	}
	fmt.Printf("WCC:      forced optimization corrupts %.0f%% of labels (apt said unsafe)\n",
		100*float64(diff)/float64(len(exact.Values)))
}

func timeRun(g *ariadne.Graph, prog ariadne.Program, opts ...ariadne.Option) (int64, *ariadne.Result) {
	res, err := ariadne.Run(g, prog, opts...)
	if err != nil {
		log.Fatal(err)
	}
	return int64(res.Duration), res
}

func relErr(a, b []ariadne.Value, p float64) float64 {
	var num, den float64
	for i := range a {
		x, y := a[i].Float(), b[i].Float()
		if math.IsInf(x, 0) || math.IsInf(y, 0) {
			continue
		}
		num += math.Pow(math.Abs(x-y), p)
		den += math.Pow(math.Abs(x), p)
	}
	if den == 0 {
		return 0
	}
	return math.Pow(num, 1/p) / math.Pow(den, 1/p)
}
