// custom-analytic shows how to bring your *own* vertex program and your
// *own* PQL monitoring query to Ariadne:
//
//   - the analytic (a gossip-style rumor spread) publishes a custom
//     provenance table via Context.EmitProv, like ALS's prov_error;
//   - a hand-written PQL query joins that table with the built-in
//     provenance EDBs and runs online, with zero changes to the analytic.
package main

import (
	"fmt"
	"log"

	"ariadne"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/queries"
	"ariadne/internal/value"
)

// rumor is a gossip process: vertex 0 knows a rumor at superstep 0; a
// vertex that hears it believes it with confidence = max(heard)/2 and
// gossips on while its confidence stays above a floor. Each vertex
// publishes how many distinct peers it heard the rumor from per superstep
// as the custom provenance table prov_heard(X, N, I).
type rumor struct {
	origin engine.VertexID
	floor  float64
}

func (r rumor) InitialValue(_ *graph.Graph, v engine.VertexID) value.Value {
	if v == r.origin {
		return value.NewFloat(1)
	}
	return value.NewFloat(0)
}

func (r rumor) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	conf := ctx.Value().Float()
	if ctx.Superstep() == 0 {
		if ctx.ID() == r.origin {
			ctx.SendToAllNeighbors(value.NewFloat(conf))
		}
		return nil
	}
	best := 0.0
	heardFrom := map[engine.VertexID]bool{}
	for _, m := range msgs {
		heardFrom[m.Src] = true
		if f := m.Val.Float(); f > best {
			best = f
		}
	}
	if ctx.Observing() {
		ctx.EmitProv("prov_heard", value.NewInt(int64(len(heardFrom))))
	}
	if newConf := best / 2; newConf > conf {
		ctx.SetValue(value.NewFloat(newConf))
		if newConf > r.floor {
			ctx.SendToAllNeighbors(value.NewFloat(newConf))
		}
	}
	return nil
}

func main() {
	g, err := gen.RMAT(gen.DefaultRMAT(10, 8, 33))
	if err != nil {
		log.Fatal(err)
	}

	// A custom monitoring query: flag vertices that became confident
	// (value above $floor) on the word of a single peer — weak evidence.
	env := analysis.NewEnv()
	env.SetParam("floor", value.NewFloat(0.05))
	env.DeclareEDB("prov_heard", 3) // prov_heard(X, N, I)
	weakEvidence := queries.Definition{
		Name: "weak-evidence",
		Source: `
believed(X, I) :- value(X, C, I), C > $floor.
weak(X, I) :- believed(X, I), prov_heard(X, N, I), N <= 1.
strong(X, I) :- believed(X, I), prov_heard(X, N, I), N >= 3.
`,
		Env: env,
	}
	if cls, vc, err := ariadne.Classify(weakEvidence); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("custom query: class=%s vc-compatible=%v\n", cls, vc)
	}

	res, err := ariadne.Run(g, rumor{origin: 0, floor: 0.05},
		ariadne.WithMaxSupersteps(12),
		ariadne.WithOnlineQuery(weakEvidence))
	if err != nil {
		log.Fatal(err)
	}

	believers := 0
	for _, v := range res.Values {
		if v.Float() > 0.05 {
			believers++
		}
	}
	qr := res.Query("weak-evidence")
	fmt.Printf("rumor spread: %d supersteps, %d/%d believers\n",
		res.Stats.Supersteps, believers, g.NumVertices())
	fmt.Printf("weak-evidence believers (heard from <=1 peer): %d vertex-steps\n",
		ariadne.Count(qr, "weak"))
	fmt.Printf("strong-evidence believers (heard from >=3 peers): %d vertex-steps\n",
		ariadne.Count(qr, "strong"))
	fmt.Println("the analytic never saw the query; the query never saw the analytic's code.")
}
