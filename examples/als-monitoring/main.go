// als-monitoring runs the ALS recommender on a synthetic MovieLens-style
// ratings graph with the paper's ALS monitoring queries (§6.2.1, Queries 7
// and 8) always on: Query 7 separates input corruption from algorithmic
// divergence; Query 8 finds users/items whose prediction error grows.
package main

import (
	"fmt"
	"log"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/gen"
	"ariadne/internal/queries"
)

func main() {
	ratings, err := gen.Bipartite(gen.DefaultBipartite(2000, 400, 12, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ratings graph: %d users, %d items, %d ratings\n",
		ratings.NumUsers, ratings.NumItems, ratings.Graph.NumEdges()/2)

	prog := &analytics.ALS{
		NumUsers: ratings.NumUsers,
		Features: 10,
		Seed:     1,
	}
	res, err := ariadne.Run(ratings.Graph, prog,
		ariadne.WithMaxSupersteps(14),
		ariadne.WithOnlineQuery(queries.ALSRangeCheck()),
		ariadne.WithOnlineQuery(queries.ALSErrorIncrease(0.5)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ALS: %d supersteps, final RMSE %.3f, %v\n",
		res.Stats.Supersteps, analytics.RMSE(res.Aggregated), res.Duration.Round(1e6))

	q7 := res.Query("q7-als-range")
	fmt.Printf("Query 7: input_failed=%d (ratings outside [0,5]) algo_failed=%d (predictions outside [0,5])\n",
		ariadne.Count(q7, "input_failed"), ariadne.Count(q7, "algo_failed"))

	q8 := res.Query("q8-als-error-increase")
	worsened := ariadne.Tuples(q8, "problem")
	fmt.Printf("Query 8: %d (vertex, superstep) pairs where the average error grew by >0.5\n", len(worsened))
	for i, row := range worsened {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  vertex %v: avg error %.3f -> %.3f at superstep %v\n",
			row[0], row[2].Float(), row[1].Float(), row[3])
	}
	fmt.Println("such vertices may be converging to a wrong solution and deserve")
	fmt.Println("special handling by the algorithm (paper §6.2.1).")
}
