// Quickstart: run PageRank on a small synthetic web graph with an always-on
// execution-monitoring query (paper Query 4) evaluated online, then capture
// provenance and ask the apt question offline.
package main

import (
	"fmt"
	"log"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/gen"
	"ariadne/internal/queries"
)

func main() {
	// A power-law digraph standing in for a small web crawl.
	g, err := gen.RMAT(gen.DefaultRMAT(10, 12, 42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// 1. Online monitoring: the query runs in lockstep with the analytic;
	// the vertex program is unchanged and unaware of it.
	res, err := ariadne.Run(g, &analytics.PageRank{},
		ariadne.WithMaxSupersteps(21),
		ariadne.WithOnlineQuery(queries.PageRankCheck()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank: %d supersteps, %d messages, %v\n",
		res.Stats.Supersteps, res.Stats.MessagesSent, res.Duration.Round(1e6))
	check := res.Query("q4-pagerank-check")
	fmt.Printf("monitoring (Query 4): %d stray-message violations\n",
		ariadne.Count(check, "check_failed"))

	// 2. Capture provenance declaratively (Query 2), then query it offline.
	res, err = ariadne.Run(g, &analytics.PageRank{},
		ariadne.WithMaxSupersteps(21),
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
	if err != nil {
		log.Fatal(err)
	}
	store := res.Provenance
	fmt.Printf("captured provenance: %d layers, %d tuples, %.1fx the input graph\n",
		store.NumLayers(), store.TotalTuples(),
		float64(store.TotalBytes())/float64(g.MemSize()))

	// 3. The motivating apt query (Query 1), layered offline evaluation:
	// how many vertices could safely skip execution at ε=0.01?
	apt, err := ariadne.QueryOffline(queries.Apt(0.01, nil), store, g, ariadne.ModeLayered, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("apt query: safe=%d unsafe=%d skipped-executions=%d\n",
		ariadne.Count(apt, "safe"), ariadne.Count(apt, "unsafe"),
		ariadne.Count(apt, "no_execute"))
	fmt.Println("=> many safe skips and no unsafe ones: the approximate")
	fmt.Println("   optimization applies (see examples/apt-tuning).")
}
