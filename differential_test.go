package ariadne_test

import (
	"math"
	"reflect"
	"testing"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/queries"
	"ariadne/internal/value"
)

// TestParallelBarrierDifferential is the non-interference check for the
// parallel barrier (Theorem 5.4 analog at the implementation level): the
// sharded delivery path with sender-side combining must produce bit-identical
// vertex values, identical RunStats message accounting, and — when capturing —
// identical provenance layers to the seed sequential barrier, for each of the
// paper's analytics. Run under -race in CI, which also exercises the shard
// goroutines for data races.
func TestParallelBarrierDifferential(t *testing.T) {
	cases := []struct {
		name     string
		prog     engine.Program
		combiner func(a, b ariadne.Value) ariadne.Value
		steps    int
	}{
		{"pagerank", &analytics.PageRank{Iterations: 10}, analytics.SumCombiner, 11},
		{"sssp", &analytics.SSSP{}, analytics.MinCombiner, 30},
		{"wcc", analytics.WCC{}, analytics.MinCombiner, 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph(t, 8, 6, 7)

			// Leg 1: combiner active (no capture — raw-message capture
			// disables combining by design), sequential vs parallel.
			seq, err := ariadne.Run(g, tc.prog,
				ariadne.WithMaxSupersteps(tc.steps),
				ariadne.WithPartitions(8),
				ariadne.WithCombiner(tc.combiner),
				ariadne.WithSequentialBarrier())
			if err != nil {
				t.Fatal(err)
			}
			par, err := ariadne.Run(g, tc.prog,
				ariadne.WithMaxSupersteps(tc.steps),
				ariadne.WithPartitions(8),
				ariadne.WithCombiner(tc.combiner))
			if err != nil {
				t.Fatal(err)
			}
			assertSameRun(t, "combined", seq, par)
			if par.Stats.MessagesCombined > 0 && par.Stats.MessagesCombinedSender == 0 {
				t.Error("parallel leg never combined at the sender")
			}
			if seq.Stats.MessagesCombinedSender != par.Stats.MessagesCombinedSender {
				t.Errorf("sender-combined %d != %d (combining semantics must be shared)",
					par.Stats.MessagesCombinedSender, seq.Stats.MessagesCombinedSender)
			}

			// Leg 1b: combining on vs off. The combiner only re-associates
			// the fold, so values agree — exactly for the idempotent min
			// combiners, within float tolerance for the PageRank sum (IEEE
			// addition is not associative).
			plain, err := ariadne.Run(g, tc.prog,
				ariadne.WithMaxSupersteps(tc.steps),
				ariadne.WithPartitions(8))
			if err != nil {
				t.Fatal(err)
			}
			if plain.Stats.MessagesSent != par.Stats.MessagesSent {
				t.Errorf("combining changed raw send count: %d != %d",
					par.Stats.MessagesSent, plain.Stats.MessagesSent)
			}
			for v := range plain.Values {
				if tc.name == "pagerank" {
					a, b := plain.Values[v].Float(), par.Values[v].Float()
					if diff := math.Abs(a - b); diff > 1e-9*math.Max(math.Abs(a), 1) {
						t.Fatalf("vertex %d combined value %v too far from uncombined %v", v, b, a)
					}
				} else if !bitIdentical(plain.Values[v], par.Values[v]) {
					t.Fatalf("vertex %d combined value %v != uncombined %v (min combiner is exact)",
						v, par.Values[v], plain.Values[v])
				}
			}

			// Leg 2: full capture (combiner auto-disabled), layers compared
			// tuple for tuple.
			seqCap, err := ariadne.Run(g, tc.prog,
				ariadne.WithMaxSupersteps(tc.steps),
				ariadne.WithPartitions(8),
				ariadne.WithCombiner(tc.combiner),
				ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}),
				ariadne.WithSequentialBarrier())
			if err != nil {
				t.Fatal(err)
			}
			defer seqCap.Provenance.Close()
			parCap, err := ariadne.Run(g, tc.prog,
				ariadne.WithMaxSupersteps(tc.steps),
				ariadne.WithPartitions(8),
				ariadne.WithCombiner(tc.combiner),
				ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
			if err != nil {
				t.Fatal(err)
			}
			defer parCap.Provenance.Close()
			assertSameRun(t, "captured", seqCap, parCap)
			assertSameProvenance(t, seqCap.Provenance, parCap.Provenance)
		})
	}
}

func assertSameRun(t *testing.T, leg string, seq, par *ariadne.Result) {
	t.Helper()
	if seq.Stats.Supersteps != par.Stats.Supersteps {
		t.Errorf("%s: supersteps %d != %d", leg, par.Stats.Supersteps, seq.Stats.Supersteps)
	}
	if seq.Stats.MessagesSent != par.Stats.MessagesSent {
		t.Errorf("%s: sent %d != %d", leg, par.Stats.MessagesSent, seq.Stats.MessagesSent)
	}
	if seq.Stats.MessagesDelivered != par.Stats.MessagesDelivered {
		t.Errorf("%s: delivered %d != %d", leg, par.Stats.MessagesDelivered, seq.Stats.MessagesDelivered)
	}
	if seq.Stats.MessagesCombined != par.Stats.MessagesCombined {
		t.Errorf("%s: combined %d != %d", leg, par.Stats.MessagesCombined, seq.Stats.MessagesCombined)
	}
	if got, want := par.Stats.MessagesSent, par.Stats.MessagesDelivered+par.Stats.MessagesCombined; got != want {
		t.Errorf("%s: sent %d != delivered+combined %d", leg, got, want)
	}
	if len(seq.Values) != len(par.Values) {
		t.Fatalf("%s: %d values != %d", leg, len(par.Values), len(seq.Values))
	}
	for v := range seq.Values {
		// Bit-identical, not approximately equal: the parallel barrier
		// preserves the sequential association order exactly.
		if !bitIdentical(seq.Values[v], par.Values[v]) {
			t.Fatalf("%s: vertex %d value %v != %v", leg, v, par.Values[v], seq.Values[v])
		}
	}
}

func bitIdentical(a, b value.Value) bool {
	return reflect.DeepEqual(a.AppendBinary(nil), b.AppendBinary(nil))
}

func assertSameProvenance(t *testing.T, seq, par *ariadne.Store) {
	t.Helper()
	if seq.NumLayers() != par.NumLayers() {
		t.Fatalf("layers %d != %d", par.NumLayers(), seq.NumLayers())
	}
	if seq.TotalTuples() != par.TotalTuples() {
		t.Errorf("tuples %d != %d", par.TotalTuples(), seq.TotalTuples())
	}
	for i := 0; i < seq.NumLayers(); i++ {
		ls, err := seq.Layer(i)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := par.Layer(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ls, lp) {
			t.Fatalf("provenance layer %d differs between barriers", i)
		}
	}
}
