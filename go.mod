module ariadne

go 1.22
