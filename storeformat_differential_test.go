package ariadne_test

import (
	"reflect"
	"testing"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/queries"
)

// TestStoreFormatDifferential is the non-interference check for the
// compressed columnar layer format and projection pushdown: for each paper
// monitoring query, the same analytic run captured under full policy and
// spilled as v1 (row) and as v2 (columnar) must produce identical online
// results, identical analytic values, zero capture gaps, and — replayed
// layered with projection pushdown on and off — identical offline results
// across all four format × projection legs. Run under -race in CI, which
// also exercises the prefetch pipeline's projected reloads for data races.
func TestStoreFormatDifferential(t *testing.T) {
	cases := []struct {
		name    string
		prog    engine.Program
		steps   int
		online  []queries.Definition
		offline []queries.Definition
	}{
		{"pagerank", &analytics.PageRank{Iterations: 8}, 9,
			[]queries.Definition{queries.PageRankCheck()},
			[]queries.Definition{queries.PageRankCheck(), queries.BackwardTrace(3, 6)}},
		{"sssp", &analytics.SSSP{Source: 0}, 30,
			[]queries.Definition{queries.MonotoneCheck()},
			[]queries.Definition{queries.MonotoneCheck()}},
		{"wcc", analytics.WCC{}, 30,
			[]queries.Definition{queries.SilentChange()},
			[]queries.Definition{queries.SilentChange()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := testGraph(t, 7, 5, 9)
			runs := map[int]*ariadne.Result{}
			for _, format := range []int{ariadne.FormatV1, ariadne.FormatV2} {
				opts := []ariadne.Option{
					ariadne.WithMaxSupersteps(tc.steps),
					ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{
						SpillAll: true,
						SpillDir: t.TempDir(),
						Format:   format,
					}),
				}
				for _, d := range tc.online {
					opts = append(opts, ariadne.WithOnlineQuery(d))
				}
				res, err := ariadne.Run(g, tc.prog, opts...)
				if err != nil {
					t.Fatal(err)
				}
				defer res.Provenance.Close()
				if len(res.CaptureGaps) != 0 {
					t.Fatalf("format %d: capture gaps %v on an undisturbed run", format, res.CaptureGaps)
				}
				runs[format] = res
			}
			v1, v2 := runs[ariadne.FormatV1], runs[ariadne.FormatV2]

			// The spill format must not touch the analytic: values bit-identical.
			for v := range v1.Values {
				if !bitIdentical(v1.Values[v], v2.Values[v]) {
					t.Fatalf("vertex %d value %v (v1 run) != %v (v2 run)", v, v1.Values[v], v2.Values[v])
				}
			}
			// Nor the capture: both stores hold the same layers tuple for tuple.
			assertSameProvenance(t, v1.Provenance, v2.Provenance)

			// Online results agree across formats.
			for _, d := range tc.online {
				assertSameQueryResult(t, "online/"+d.Name,
					v1.Query(d.Name), v2.Query(d.Name))
			}

			// Offline layered replay: v1 without projection is the reference
			// leg; v1 projected (table-level), v2 unprojected, and v2
			// projected (column-level partial reads) must all agree with it.
			for _, d := range tc.offline {
				ref, err := ariadne.QueryOffline(d, v1.Provenance, g, ariadne.ModeLayered, 0,
					ariadne.NoProjection())
				if err != nil {
					t.Fatal(err)
				}
				legs := []struct {
					name  string
					store *ariadne.Store
					opts  []ariadne.EvalOption
				}{
					{"v1/projected", v1.Provenance, nil},
					{"v2/unprojected", v2.Provenance, []ariadne.EvalOption{ariadne.NoProjection()}},
					{"v2/projected", v2.Provenance, nil},
				}
				for _, leg := range legs {
					got, err := ariadne.QueryOffline(d, leg.store, g, ariadne.ModeLayered, 0, leg.opts...)
					if err != nil {
						t.Fatalf("%s/%s: %v", d.Name, leg.name, err)
					}
					assertSameQueryResult(t, d.Name+"/"+leg.name, ref, got)
				}
			}
		})
	}
}

// assertSameQueryResult checks got derives exactly the same relations as
// ref, tuple for tuple.
func assertSameQueryResult(t *testing.T, leg string, ref, got *ariadne.QueryResult) {
	t.Helper()
	if ref == nil || got == nil {
		t.Errorf("%s: missing query result (ref %v, got %v)", leg, ref != nil, got != nil)
		return
	}
	refRels, gotRels := ref.DerivedRelations(), got.DerivedRelations()
	if !reflect.DeepEqual(refRels, gotRels) {
		t.Errorf("%s: derived relations %v != %v", leg, gotRels, refRels)
		return
	}
	for _, ri := range refRels {
		r, g := ref.Relation(ri.Name), got.Relation(ri.Name)
		for _, tup := range r.All() {
			if !g.Contains(tup) {
				t.Errorf("%s: %s tuple %v missing", leg, ri.Name, tup)
			}
		}
	}
}
