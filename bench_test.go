// Benchmarks regenerating the paper's evaluation (§6): one benchmark per
// table and figure, each running the corresponding experiment on the
// smallest dataset stand-in (IN-04) so `go test -bench=.` stays tractable.
// The full sweep across all datasets is `go run ./cmd/ariadne-bench`.
//
// Ablation benchmarks at the bottom quantify the design decisions called
// out in DESIGN.md §5.
package ariadne_test

import (
	"io"
	"testing"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/bench"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/provenance"
	"ariadne/internal/queries"
	"ariadne/internal/value"
)

func benchRunner() *bench.Runner {
	return bench.NewRunner(bench.Config{
		SizeFactor: -1,
		Supersteps: 10,
		Datasets:   []string{"IN-04"},
		Out:        io.Discard,
	})
}

func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3FullProvenanceSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4CustomProvenanceSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7CaptureOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8MonitoringModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9ALSMonitoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig9(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Table5PageRankApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Table6SSSPApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Table6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10WCCUnsafe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig10WCC(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11AptModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12BackwardLineage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkALSCaptureBlowup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner().ALSCapture(b.TempDir()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 5))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkAblationCompactVsUnfolded compares the compact provenance
// representation (one record per vertex per layer, DESIGN.md decision 1)
// against an unfolded graph of per-(vertex, superstep) node objects with
// explicit evolution pointers, for the same captured SSSP provenance.
func BenchmarkAblationCompactVsUnfolded(b *testing.B) {
	g := benchGraph(b)
	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
	if err != nil {
		b.Fatal(err)
	}
	store := res.Provenance
	var layers []*provenance.Layer
	for i := 0; i < store.NumLayers(); i++ {
		l, err := store.Layer(i)
		if err != nil {
			b.Fatal(err)
		}
		layers = append(layers, l)
	}

	b.Run("compact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := provenance.NewStore(provenance.StoreConfig{})
			for _, l := range layers {
				nl := &provenance.Layer{Superstep: l.Superstep, Records: append([]provenance.Record(nil), l.Records...)}
				if err := s.AppendLayer(nl); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("unfolded", func(b *testing.B) {
		b.ReportAllocs()
		type node struct {
			vertex    graph.VertexID
			superstep int
			value     value.Value
			sends     []provenance.MsgHalf
			recvs     []provenance.MsgHalf
			evolution *node
		}
		for i := 0; i < b.N; i++ {
			nodes := map[uint64]*node{}
			key := func(v graph.VertexID, ss int) uint64 { return uint64(v)<<32 | uint64(ss) }
			for _, l := range layers {
				for ri := range l.Records {
					r := &l.Records[ri]
					n := &node{vertex: r.Vertex, superstep: l.Superstep, value: r.Value,
						sends: append([]provenance.MsgHalf(nil), r.Sends...),
						recvs: append([]provenance.MsgHalf(nil), r.Recvs...)}
					if r.PrevActive >= 0 {
						n.evolution = nodes[key(r.Vertex, int(r.PrevActive))]
					}
					nodes[key(r.Vertex, l.Superstep)] = n
				}
			}
			if len(nodes) == 0 {
				b.Fatal("no nodes")
			}
		}
	})
}

// BenchmarkAblationCombiner quantifies the message combiner the engine must
// disable when capture needs raw messages (DESIGN.md decision 2).
func BenchmarkAblationCombiner(b *testing.B) {
	g := benchGraph(b)
	b.Run("with-combiner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := engine.New(g, &analytics.SSSP{Source: 0}, engine.Config{Combiner: analytics.MinCombiner})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw-messages", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, err := engine.New(g, &analytics.SSSP{Source: 0}, engine.Config{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRetention isolates the cost of the per-vertex last-value
// retention that layered evaluation uses to satisfy evolution joins
// (DESIGN.md decision 3): the apt query (needs evolution + retention)
// versus the silent-change probe of Query 6 stripped of evolution.
func BenchmarkAblationRetention(b *testing.B) {
	g := benchGraph(b)
	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
	if err != nil {
		b.Fatal(err)
	}
	store := res.Provenance
	withEvolution := queries.Apt(0.1, nil)
	withoutEvolution := queries.Definition{
		Name: "apt-no-evolution",
		Source: `
got_msg(X, I) :- receive_message(X, Y, M, I).
no_execute(X, I) :- !got_msg(X, I), superstep(X, I).
`,
		Env: withEvolution.Env,
	}
	b.Run("with-evolution-joins", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ariadne.QueryOffline(withEvolution, store, g, ariadne.ModeLayered, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-evolution-joins", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ariadne.QueryOffline(withoutEvolution, store, g, ariadne.ModeLayered, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOnlineVsCaptureQuery compares the paper's two paths to a
// forward query result: online lockstep evaluation versus capture-to-disk
// followed by layered offline evaluation (the traditional approach).
func BenchmarkAblationOnlineVsCaptureQuery(b *testing.B) {
	g := benchGraph(b)
	def := queries.MonotoneCheck()
	b.Run("online", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
				ariadne.WithOnlineQuery(def)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("capture-then-layered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
				ariadne.WithCaptureQuery(queries.CaptureFull(),
					ariadne.StoreConfig{SpillDir: b.TempDir(), SpillAll: true}))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ariadne.QueryOffline(def, res.Provenance, g, ariadne.ModeLayered, 0); err != nil {
				b.Fatal(err)
			}
			res.Provenance.Close()
		}
	})
}

// BenchmarkAblationIncrementalVsBulk compares incremental per-layer
// fixpoints (semi-naive deltas, what Layered does) against one bulk
// fixpoint over everything (what Naive does) for the same query and data.
func BenchmarkAblationIncrementalVsBulk(b *testing.B) {
	g := benchGraph(b)
	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
	if err != nil {
		b.Fatal(err)
	}
	store := res.Provenance
	b.Run("incremental-layers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ariadne.QueryOffline(queries.Apt(0.1, nil), store, g, ariadne.ModeLayered, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ariadne.QueryOffline(queries.Apt(0.1, nil), store, g, ariadne.ModeNaive, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineMessageThroughput is a substrate microbenchmark: BSP
// message delivery rate without any provenance machinery.
func BenchmarkEngineMessageThroughput(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	var msgs int64
	for i := 0; i < b.N; i++ {
		e, err := engine.New(g, &analytics.PageRank{Iterations: 10}, engine.Config{MaxSupersteps: 11})
		if err != nil {
			b.Fatal(err)
		}
		st, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		msgs += st.MessagesSent
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
}
