// Package ariadne is a Go implementation of Ariadne (SIGMOD 2019): online
// provenance capture and querying for vertex-centric Big Graph analytics.
//
// The package ties together a Pregel-style BSP engine, the compact
// provenance graph store, and PQL — a Datalog-based provenance query
// language — offering the paper's three evaluation modes:
//
//   - Online: a forward/local PQL query evaluates in lockstep with the
//     unmodified analytic; at the end both the analytic result and the
//     query result exist (≈1.3x baseline in the paper).
//   - Layered: an offline query over captured provenance, materializing
//     one superstep layer at a time.
//   - Naive: traditional full materialization of the provenance graph.
//
// Quick start:
//
//	g, _ := gen.RMAT(gen.DefaultRMAT(10, 16, 1))
//	res, _ := ariadne.Run(g, &analytics.PageRank{},
//	    ariadne.WithMaxSupersteps(21),
//	    ariadne.WithOnlineQuery(queries.PageRankCheck()))
//	failed := res.Query("q4-pagerank-check").Relation("check_failed")
package ariadne

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ariadne/internal/capture"
	"ariadne/internal/driver"
	"ariadne/internal/engine"
	"ariadne/internal/fault"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/provenance"
	"ariadne/internal/queries"
	"ariadne/internal/supervise"
	"ariadne/internal/value"
)

// Convenient aliases so callers rarely need the internal packages directly.
type (
	// Graph is the input graph type.
	Graph = graph.Graph
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Program is a vertex program in the VC model.
	Program = engine.Program
	// Value is the universal datum type.
	Value = value.Value
	// QueryDef is a parameterized PQL query definition.
	QueryDef = queries.Definition
	// QueryResult exposes the relations a query derived.
	QueryResult = driver.Result
	// CapturePolicy declares what provenance to persist.
	CapturePolicy = capture.Policy
	// Store is a captured provenance graph.
	Store = provenance.Store
	// StoreConfig configures provenance storage (budget, spill directory).
	StoreConfig = provenance.StoreConfig
	// CrashError reports a vertex-program failure with its culprit vertex
	// and superstep; errors.As on any Run/Resume error reaches it.
	CrashError = engine.CrashError
	// FaultInjector deterministically injects panics and transient I/O
	// errors for crash-recovery testing.
	FaultInjector = fault.Injector
	// Metrics is the run's observability registry: atomic counters, gauges,
	// and histograms plus an optional trace ring and per-superstep profiles.
	// Scrape-safe while a run is in flight (see obs.Handler / obs.Serve).
	Metrics = obs.Metrics
	// SuperstepProfile is one superstep's metrics snapshot (timings, message
	// counts, capture/spill/checkpoint volumes, per-query piggyback tuples).
	SuperstepProfile = obs.SuperstepProfile
	// TraceEvent is one structured trace-ring entry.
	TraceEvent = obs.Event
	// SuperviseConfig tunes partition-level supervision: per-partition
	// superstep deadlines, bounded retry with backoff, and degraded-mode
	// capture (see WithSupervision).
	SuperviseConfig = supervise.Config
	// CaptureGap records a superstep range whose provenance capture was shed
	// in degraded mode (Partition -1 = all partitions). Queryable from PQL
	// as capture_gap(P, F, T).
	CaptureGap = provenance.CaptureGap
	// EvalOption tunes PQL evaluation (QueryOffline and online queries):
	// shard-parallel worker count, sequential reference leg, layer prefetch.
	EvalOption = driver.EvalOpt
	// Transport executes partition supersteps, in-process or on remote
	// worker processes (see WithTransport and internal/transport).
	Transport = engine.Transport
)

// EvalWorkers sets the shard-parallel evaluation worker count for a query
// (n <= 0 picks min(8, GOMAXPROCS); 1 disables parallel delta rounds).
func EvalWorkers(n int) EvalOption { return driver.EvalWorkers(n) }

// SequentialEval forces the seed sequential evaluation path (one worker, no
// layer prefetch) — the reference leg for differential runs, mirroring
// WithSequentialBarrier on the engine side.
func SequentialEval() EvalOption { return driver.SequentialEval() }

// NoProjection disables projection pushdown during layered replay: every
// spilled provenance column is materialized whether or not the query reads
// it. This is the reference leg for differential tests and storage
// benchmarks; production replays should let the driver project.
func NoProjection() EvalOption { return driver.NoProjection() }

// Layer file formats for StoreConfig.Format. Readers sniff the version
// byte, so either format (and mixes of both in one spill directory) always
// loads regardless of this setting.
const (
	// FormatV1 is the original row-oriented layer file.
	FormatV1 = provenance.FormatV1
	// FormatV2 is the compressed columnar layout with per-column footer
	// offsets; the default, and the only format that supports projected
	// (partial-column) reads.
	FormatV2 = provenance.FormatV2
)

// NewMetrics creates an empty metrics registry for WithMetrics. Create it
// before Run to serve obs.Handler(m) endpoints while the run is live.
func NewMetrics() *Metrics { return obs.New() }

// ErrComputePanic is the cause inside a CrashError when the vertex program
// panicked (errors.Is-friendly through the public API).
var ErrComputePanic = engine.ErrComputePanic

// Result is the outcome of a Run.
type Result struct {
	// Values holds the analytic's final vertex values.
	Values []Value
	// Stats summarizes the run (supersteps, messages, active vertices).
	Stats engine.RunStats
	// Duration is the wall-clock time of the run.
	Duration time.Duration
	// Provenance is the captured store, when WithCapture* was used.
	Provenance *Store
	// Aggregated exposes the analytic's final global aggregators.
	Aggregated engine.AggregatorReader
	// ResumedFrom is the superstep a Resume restarted at (0 for a fresh
	// Run, or when the first checkpoint had not been written yet).
	ResumedFrom int
	// Profile holds one entry per completed superstep when WithMetrics (or
	// WithTrace) was used — cumulative across Resume, so a recovered run
	// reports the same per-superstep curve as an uninterrupted one.
	Profile []SuperstepProfile
	// Metrics is the registry the run reported into (nil without
	// WithMetrics/WithTrace); use it for Prometheus text or trace events.
	Metrics *Metrics
	// CaptureGaps lists the superstep ranges whose provenance capture was
	// shed under degraded mode (empty when capture never degraded). The
	// analytic values above are exact regardless — degradation drops only
	// provenance, never analytic state (Theorem 5.4 non-interference).
	CaptureGaps []CaptureGap
	// NetStats snapshots the run's ariadne_net_* counters (bytes/messages/
	// retransmits over the transport) plus the trace-ring drop counter — nil
	// for local runs without network traffic and runs without metrics.
	NetStats map[string]int64

	queryResults map[string]*driver.Result
}

// Query returns the online query result registered under the definition's
// name, or nil.
func (r *Result) Query(name string) *QueryResult { return r.queryResults[name] }

type runConfig struct {
	engineCfg  engine.Config
	capturePol *capture.Policy
	captureDef *queries.Definition
	storeCfg   provenance.StoreConfig
	onlineDefs []queries.Definition
	evalOpts   []driver.EvalOpt
	observers  []engine.Observer
	metrics    *obs.Metrics
	traceCap   int
	spanTrace  bool
	supervise  *supervise.Config
	ckptKeep   int
}

// Option customizes Run.
type Option func(*runConfig) error

// WithMaxSupersteps bounds the number of supersteps.
func WithMaxSupersteps(n int) Option {
	return func(c *runConfig) error {
		c.engineCfg.MaxSupersteps = n
		return nil
	}
}

// WithPartitions sets the number of simulated cluster workers.
func WithPartitions(n int) Option {
	return func(c *runConfig) error {
		c.engineCfg.Partitions = n
		return nil
	}
}

// WithCombiner installs a message combiner (disabled automatically when a
// capture policy or query needs raw per-message provenance).
func WithCombiner(f func(a, b Value) Value) Option {
	return func(c *runConfig) error {
		c.engineCfg.Combiner = f
		return nil
	}
}

// WithSequentialBarrier selects the seed single-threaded superstep barrier
// (one sequential merge loop, fresh inbox maps each superstep, global
// record sort) instead of the parallel sharded one. Combining semantics
// are shared between the modes, so the two paths are bit-identical by
// construction; this option exists as the reference leg for differential
// tests and the "before" leg of BenchmarkBarrier.
func WithSequentialBarrier() Option {
	return func(c *runConfig) error {
		c.engineCfg.SequentialBarrier = true
		return nil
	}
}

// WithCapture captures provenance under an explicit policy into a store
// configured by cfg.
func WithCapture(p CapturePolicy, cfg StoreConfig) Option {
	return func(c *runConfig) error {
		if c.capturePol != nil || c.captureDef != nil {
			return errors.New("ariadne: multiple capture options")
		}
		pol := p
		c.capturePol = &pol
		c.storeCfg = cfg
		return nil
	}
}

// WithCaptureQuery captures provenance as declared by a PQL capture query
// (paper Queries 2, 3, 11): the query is analyzed and compiled to a policy.
func WithCaptureQuery(def QueryDef, cfg StoreConfig) Option {
	return func(c *runConfig) error {
		if c.capturePol != nil || c.captureDef != nil {
			return errors.New("ariadne: multiple capture options")
		}
		d := def
		c.captureDef = &d
		c.storeCfg = cfg
		return nil
	}
}

// WithOnlineQuery evaluates a forward/local PQL query in lockstep with the
// analytic (paper §5.2). May be repeated for several always-on queries.
func WithOnlineQuery(def QueryDef) Option {
	return func(c *runConfig) error {
		c.onlineDefs = append(c.onlineDefs, def)
		return nil
	}
}

// WithEvalWorkers sets the shard-parallel worker count every online query
// of this run evaluates with (VC-compatible queries shard their delta
// rounds by the location column; others fall back to one worker).
func WithEvalWorkers(n int) Option {
	return func(c *runConfig) error {
		c.evalOpts = append(c.evalOpts, driver.EvalWorkers(n))
		return nil
	}
}

// WithSequentialEval forces the seed sequential evaluation path for every
// online query of this run — the reference leg for differential tests,
// mirroring WithSequentialBarrier. Results are identical either way; only
// the evaluation machinery differs.
func WithSequentialEval() Option {
	return func(c *runConfig) error {
		c.evalOpts = append(c.evalOpts, driver.SequentialEval())
		return nil
	}
}

// WithMetrics threads the run's instrumentation through m: per-superstep
// profiles, message/capture/spill/checkpoint counters, and phase timing
// histograms. The same registry may be served over HTTP (obs.Serve) while
// the run is live; all hot-path updates are atomic. Without this option (or
// WithTrace) instrumentation is fully disabled at ~zero cost.
func WithMetrics(m *Metrics) Option {
	return func(c *runConfig) error {
		if m == nil {
			return errors.New("ariadne: WithMetrics needs a non-nil registry (use NewMetrics)")
		}
		c.metrics = m
		return nil
	}
}

// WithTrace enables the structured trace ring with the given capacity
// (events; <=0 picks a default of 4096), creating a registry implicitly if
// WithMetrics was not given. Trace events record barrier transitions,
// checkpoint writes, spill retries under I/O faults, and crash recoveries.
func WithTrace(capacity int) Option {
	return func(c *runConfig) error {
		if capacity <= 0 {
			capacity = 4096
		}
		c.traceCap = capacity
		return nil
	}
}

// WithSpanTrace enables the distributed span timeline (PR 7): hierarchical
// spans for every superstep phase, per-partition compute, and — under a TCP
// transport — every exchange RPC, including decode/compute/encode child
// spans measured inside the worker processes and shipped back piggybacked
// on the results. Creates a registry implicitly if WithMetrics was not
// given. Export the merged timeline with Metrics.ChromeTrace (Perfetto/
// chrome://tracing) or query it as the superstep_profile / net_rpc EDBs.
// Without this option span recording stays disabled at zero allocation cost.
func WithSpanTrace() Option {
	return func(c *runConfig) error {
		c.spanTrace = true
		return nil
	}
}

// WithObserver attaches a custom engine observer.
func WithObserver(o engine.Observer) Option {
	return func(c *runConfig) error {
		c.observers = append(c.observers, o)
		return nil
	}
}

// WithContext makes the run cancelable: ctx is checked at every superstep
// barrier, so cancellation or a deadline aborts a hung or runaway analytic
// cleanly with a descriptive error instead of blocking forever.
func WithContext(ctx context.Context) Option {
	return func(c *runConfig) error {
		c.engineCfg.Context = ctx
		return nil
	}
}

// WithCheckpoint snapshots the full run state (vertex values, active set,
// in-flight messages, aggregators, and observer state) into dir every
// `every` supersteps. A crashed run restarts from the newest good checkpoint
// via Resume with the same options.
func WithCheckpoint(dir string, every int) Option {
	return func(c *runConfig) error {
		if dir == "" || every <= 0 {
			return errors.New("ariadne: WithCheckpoint needs a directory and a positive interval")
		}
		c.engineCfg.Checkpoint = &engine.CheckpointConfig{Dir: dir, Interval: every}
		return nil
	}
}

// WithSupervision wraps every partition worker in a supervisor: per-
// partition superstep deadlines flag stragglers and cancel hung partitions,
// transient failures (compute panics, injected faults, deadline expiry) are
// retried with exponential backoff re-executing only the failed partition
// from the superstep barrier, and — when sc.DegradeCaptureAfter > 0 —
// repeated capture-side failures shed provenance capture (and online-query
// piggybacking) for the failing partition instead of aborting the run. The
// analytic result is bit-identical with or without supervision; shed ranges
// surface as Result.CaptureGaps and the capture_gap(P, F, T) PQL predicate.
func WithSupervision(sc SuperviseConfig) Option {
	return func(c *runConfig) error {
		s := sc
		c.supervise = &s
		return nil
	}
}

// WithCheckpointRetention prunes the checkpoint directory to the newest
// keep checkpoints after each successful write (default 3 under cmd/ariadne;
// the engine's own default is 2). Requires WithCheckpoint.
func WithCheckpointRetention(keep int) Option {
	return func(c *runConfig) error {
		if keep <= 0 {
			return errors.New("ariadne: WithCheckpointRetention needs keep >= 1")
		}
		c.ckptKeep = keep
		return nil
	}
}

// WithTransport routes each partition's superstep compute through t — an
// in-process executor leg or a TCP client to worker processes (package
// internal/transport, `ariadne worker` / `run -transport tcp`). The barrier,
// capture, checkpointing, and query evaluation still run in this process,
// so results are bit-identical to a local run. Pair with WithSupervision:
// transport failures then retry under the supervision policy, and a
// partition unreachable past MaxRetries falls back to local execution with
// its provenance capture shed (surfaced in Result.CaptureGaps) when
// DegradeCaptureAfter enables degraded mode. The engine does not close t;
// the caller owns its lifecycle.
func WithTransport(t Transport) Option {
	return func(c *runConfig) error {
		if t == nil {
			return errors.New("ariadne: WithTransport requires a non-nil transport")
		}
		c.engineCfg.Transport = t
		return nil
	}
}

// WithFault installs a deterministic fault injector, consulted by the
// engine's compute path and the checkpoint/spill writers — the test harness
// for crash recovery.
func WithFault(inj *FaultInjector) Option {
	return func(c *runConfig) error {
		c.engineCfg.Fault = inj
		c.storeCfg.Fault = inj
		return nil
	}
}

// WithFaultSpec parses a fault.ParseSpec string (the cmd/ariadne -faults
// syntax, e.g. "compute:mode=panic:ss=3:vertex=7") into a WithFault option.
func WithFaultSpec(spec string) Option {
	return func(c *runConfig) error {
		rules, err := fault.ParseSpec(spec)
		if err != nil {
			return err
		}
		inj := fault.NewInjector(rules...)
		c.engineCfg.Fault = inj
		c.storeCfg.Fault = inj
		return nil
	}
}

// prepare applies opts and constructs the observer pipeline. The observer
// construction order (capture, then online queries in option order, then
// custom observers) is deterministic — Resume depends on it to re-match
// checkpointed observer state by position.
func prepare(g *Graph, opts []Option) (*runConfig, *provenance.Store, []*driver.Online, error) {
	var cfg runConfig
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, nil, nil, err
		}
	}

	// Observability: WithTrace implies a registry; every instrumented
	// component shares the one registry (nil keeps them all no-ops).
	if (cfg.traceCap > 0 || cfg.spanTrace) && cfg.metrics == nil {
		cfg.metrics = obs.New()
	}
	if cfg.metrics != nil {
		if cfg.traceCap > 0 {
			cfg.metrics.EnableTrace(cfg.traceCap)
		}
		if cfg.spanTrace {
			cfg.metrics.EnableSpans()
		}
		cfg.engineCfg.Metrics = cfg.metrics
		cfg.storeCfg.Metrics = cfg.metrics
	}

	// Checkpoint retention and supervision are plain config threading, but
	// both have cross-option dependencies resolved only after every option
	// has been applied.
	if cfg.ckptKeep > 0 {
		if cfg.engineCfg.Checkpoint == nil {
			return nil, nil, nil, errors.New("ariadne: WithCheckpointRetention requires WithCheckpoint")
		}
		cfg.engineCfg.Checkpoint.Keep = cfg.ckptKeep
	}
	var deg *supervise.DegradeState
	if cfg.supervise != nil {
		cfg.engineCfg.Supervise = cfg.supervise
		deg = supervise.NewDegradeState(cfg.supervise.DegradeCaptureAfter)
	}
	// The transport's local-fallback path sheds an unreachable partition's
	// capture through the same degradation state.
	cfg.engineCfg.Degrade = deg

	// Capture observer.
	var store *provenance.Store
	if cfg.captureDef != nil {
		q, err := cfg.captureDef.Build()
		if err != nil {
			return nil, nil, nil, err
		}
		pol, err := capture.FromQuery(q, cfg.captureDef.Env)
		if err != nil {
			return nil, nil, nil, err
		}
		cfg.capturePol = &pol
	}
	if cfg.capturePol != nil {
		store = provenance.NewStore(cfg.storeCfg)
		co := capture.NewObserver(*cfg.capturePol, store)
		co.SetMetrics(cfg.metrics)
		co.SetDegradation(deg, cfg.engineCfg.Fault)
		cfg.engineCfg.Observers = append(cfg.engineCfg.Observers, co)
	}

	// Online query observers.
	var onlines []*driver.Online
	for _, def := range cfg.onlineDefs {
		q, err := def.Build()
		if err != nil {
			return nil, nil, nil, err
		}
		evalOpts := cfg.evalOpts
		if cfg.metrics != nil {
			evalOpts = append(append([]driver.EvalOpt(nil), evalOpts...), driver.WithEvalObs(cfg.metrics))
		}
		o, err := driver.NewOnline(q, g, evalOpts...)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("ariadne: query %s: %w", def.Name, err)
		}
		o.SetMetrics(cfg.metrics, def.Name)
		o.SetDegrade(deg)
		onlines = append(onlines, o)
		cfg.engineCfg.Observers = append(cfg.engineCfg.Observers, o)
	}
	cfg.engineCfg.Observers = append(cfg.engineCfg.Observers, cfg.observers...)
	return &cfg, store, onlines, nil
}

// finish collects the run outcome shared by Run and Resume.
func finish(e *engine.Engine, cfg *runConfig, store *provenance.Store, onlines []*driver.Online, start time.Time, stats engine.RunStats, err error) (*Result, error) {
	res := &Result{queryResults: map[string]*driver.Result{}}
	res.Duration = time.Since(start)
	res.Stats = stats
	res.Values = e.Values()
	res.Aggregated = e.Aggregated()
	res.Provenance = store
	res.ResumedFrom = e.ResumedFrom()
	if store != nil {
		res.CaptureGaps = store.Gaps()
	}
	if cfg.metrics != nil {
		res.Metrics = cfg.metrics
		res.Profile = cfg.metrics.Profiles()
		res.NetStats = cfg.metrics.NetStats()
		// Attach the run's telemetry to the store so offline PQL can feed
		// the superstep_profile / net_rpc EDBs.
		if store != nil {
			store.SetTelemetry(provenance.Telemetry{
				Profiles: res.Profile,
				RPCs:     cfg.metrics.RPCStats(),
				Spans:    cfg.metrics.Spans(),
			})
		}
	}
	for i, def := range cfg.onlineDefs {
		res.queryResults[def.Name] = onlines[i].Result()
	}
	return res, err
}

// Run executes the analytic over g with optional provenance capture and
// online queries. The analytic's code path is identical with or without
// provenance (transparent capture, paper §1).
func Run(g *Graph, prog Program, opts ...Option) (*Result, error) {
	cfg, store, onlines, err := prepare(g, opts)
	if err != nil {
		return nil, err
	}
	e, err := engine.New(g, prog, cfg.engineCfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	stats, err := e.Run()
	return finish(e, cfg, store, onlines, start, stats, err)
}

// Resume restarts a crashed Run from its newest readable checkpoint
// (falling back to older ones in the manifest when the newest is damaged)
// and runs it to completion. Pass the same graph, program, and options as
// the original run — including WithCheckpoint, which names the checkpoint
// directory. Observer state (capture watermark, online-query relations) is
// restored along with engine state, so the final values and query results
// are identical to an uninterrupted run.
//
// A capture observer resuming in a fresh process recovers its store from
// the spill directory and therefore needs StoreConfig.SpillAll; in-process
// resume (same Store object) has no such restriction.
func Resume(g *Graph, prog Program, opts ...Option) (*Result, error) {
	cfg, store, onlines, err := prepare(g, opts)
	if err != nil {
		return nil, err
	}
	if cfg.engineCfg.Checkpoint == nil {
		return nil, errors.New("ariadne: Resume needs WithCheckpoint to locate checkpoints")
	}
	e, err := engine.Resume(g, prog, cfg.engineCfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	stats, err := e.Run()
	return finish(e, cfg, store, onlines, start, stats, err)
}

// Mode selects an offline evaluation strategy.
type Mode uint8

// Offline evaluation modes.
const (
	// Auto picks Layered when the query's class allows it, else Naive.
	Auto Mode = iota
	// ModeLayered materializes one provenance layer at a time (§5.1).
	ModeLayered
	// ModeNaive materializes the entire provenance graph (§6.2 "Naive").
	ModeNaive
)

// QueryOffline evaluates def over captured provenance. naiveBudget bounds
// the naive mode's database bytes (0 = unlimited). Options tune the
// evaluation pipeline (EvalWorkers, SequentialEval).
func QueryOffline(def QueryDef, store *Store, g *Graph, mode Mode, naiveBudget int64, opts ...EvalOption) (*QueryResult, error) {
	q, err := def.Build()
	if err != nil {
		return nil, err
	}
	switch mode {
	case ModeNaive:
		return driver.Naive(q, store, g, naiveBudget, opts...)
	case ModeLayered:
		return driver.Layered(q, store, g, opts...)
	default:
		if q.Class.LayeredEvaluable() {
			return driver.Layered(q, store, g, opts...)
		}
		return driver.Naive(q, store, g, naiveBudget, opts...)
	}
}

// Classify analyzes a query definition and returns its class string
// ("local", "forward", "backward", "mixed") and VC-compatibility.
func Classify(def QueryDef) (class string, vcCompatible bool, err error) {
	q, err := def.Build()
	if err != nil {
		return "", false, err
	}
	return q.Class.String(), q.VCCompatible, nil
}

// Tuples extracts a result relation as [][]Value rows, sorted, or nil if
// the relation does not exist.
func Tuples(r *QueryResult, pred string) [][]Value {
	rel := r.Relation(pred)
	if rel == nil {
		return nil
	}
	sorted := rel.Sorted()
	out := make([][]Value, len(sorted))
	for i, t := range sorted {
		out[i] = t
	}
	return out
}

// Count returns the number of tuples in a result relation (0 if absent).
func Count(r *QueryResult, pred string) int {
	rel := r.Relation(pred)
	if rel == nil {
		return 0
	}
	return rel.Len()
}
