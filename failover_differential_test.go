package ariadne_test

import (
	"testing"
	"time"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/queries"
	"ariadne/internal/transport"
)

// The failover differential at the public API boundary: a distributed run
// that loses one worker mid-run (abruptly — no drain) and sees it rejoin a
// few supersteps later must be indistinguishable from the undisturbed
// in-process run — bit-identical values, tuple-identical provenance, ZERO
// capture gaps (failover re-executes on a survivor; nothing is shed), and
// identical results for every paper query. Only when the whole pool dies
// may the engine fall to pin-local execution, and then the shed capture
// must be accounted as gaps.

// failoverWorker is one worker with a stable address across restarts.
type failoverWorker struct {
	t     *testing.T
	g     *graph.Graph
	parts int
	addr  string
	w     *transport.Worker
}

func (s *failoverWorker) start() {
	s.t.Helper()
	x, err := engine.NewExecutor(s.g, emitSSSP{&analytics.SSSP{}}, engine.Config{Partitions: s.parts})
	if err != nil {
		s.t.Fatal(err)
	}
	w, err := transport.NewWorker(x, s.addr, nil)
	if err != nil {
		s.t.Fatal(err)
	}
	s.addr = w.Addr()
	s.w = w
	go w.Serve()
	s.t.Cleanup(func() { w.Close() })
}

// killRejoin kills the target worker at the kill barrier and restarts it
// at the rejoin barrier, so the loss and the comeback both land mid-run.
type killRejoin struct {
	killAt, rejoinAt int
	target           *failoverWorker
}

func (o *killRejoin) NeedsRawMessages() bool { return false }
func (o *killRejoin) Finish(int) error       { return nil }
func (o *killRejoin) ObserveSuperstep(v *engine.SuperstepView) error {
	switch v.Superstep {
	case o.killAt:
		o.target.w.Close()
	case o.rejoinAt:
		o.target.start()
	}
	return nil
}

func TestFailoverDifferentialAPI(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(7, 4, 23))
	if err != nil {
		t.Fatal(err)
	}
	const parts = 8
	commonOpts := func() []ariadne.Option {
		return []ariadne.Option{
			ariadne.WithMaxSupersteps(30),
			ariadne.WithPartitions(parts),
			ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}),
		}
	}

	base, err := ariadne.Run(g, emitSSSP{&analytics.SSSP{}}, commonOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Provenance.Close()
	if base.Stats.Supersteps < 5 {
		t.Fatalf("reference run too short (%d supersteps) to kill and rejoin mid-run", base.Stats.Supersteps)
	}

	const nw = 3
	workers := make([]*failoverWorker, nw)
	addrs := make([]string, nw)
	for i := range workers {
		workers[i] = &failoverWorker{t: t, g: g, parts: parts, addr: "127.0.0.1:0"}
		workers[i].start()
		addrs[i] = workers[i].addr
	}
	m := ariadne.NewMetrics()
	tr, err := transport.DialTCP(transport.TCPConfig{
		Addrs: addrs,
		Fingerprint: transport.Fingerprint{
			Partitions:  parts,
			NumVertices: g.NumVertices(),
			NumEdges:    g.NumEdges(),
		},
		MessageDeadline:   200 * time.Millisecond,
		MaxRetries:        1,
		Backoff:           time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   2,
		Metrics:           m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Worker 1 dies after superstep 1 and comes back after superstep 3:
	// its partitions fail over, then it rejoins for the tail of the run.
	res, err := ariadne.Run(g, emitSSSP{&analytics.SSSP{}}, append(commonOpts(),
		ariadne.WithTransport(tr),
		ariadne.WithMetrics(m),
		ariadne.WithObserver(&killRejoin{killAt: 1, rejoinAt: 3, target: workers[1]}),
		ariadne.WithSupervision(ariadne.SuperviseConfig{
			MaxRetries: 2, Backoff: time.Millisecond, DegradeCaptureAfter: 1,
		}))...)
	if err != nil {
		t.Fatalf("failover run: %v", err)
	}
	defer res.Provenance.Close()

	assertSameRun(t, "failover", base, res)
	assertSameProvenance(t, base.Provenance, res.Provenance)
	if len(res.CaptureGaps) != 0 {
		t.Errorf("capture gaps %v: failover must preserve capture, not shed it", res.CaptureGaps)
	}
	if n := res.NetStats[obs.MetricNetLocalFallbacks]; n != 0 {
		t.Errorf("%d local fallbacks: survivors should have absorbed the dead worker's partitions", n)
	}
	if res.NetStats[obs.MetricFailoverDeaths] == 0 {
		t.Error("expected the killed worker to be declared dead")
	}
	if res.NetStats[obs.MetricFailoverReassignments] == 0 {
		t.Error("expected the dead worker's partitions to be reassigned")
	}
	// The restarted worker rejoins via a fresh fingerprint handshake —
	// driven by the heartbeat redial, so poll briefly: the run may have
	// finished on the survivors before the probe landed.
	deadline := time.Now().Add(2 * time.Second)
	for m.Counter(obs.MetricFailoverRejoins).Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if m.Counter(obs.MetricFailoverRejoins).Value() == 0 {
		t.Error("restarted worker never rejoined the pool")
	}

	// Every paper query must read identically from both stores, agreeing
	// even on evaluability.
	for _, def := range paperQueries() {
		qb, errB := ariadne.QueryOffline(def, base.Provenance, g, ariadne.ModeLayered, 0)
		qf, errF := ariadne.QueryOffline(def, res.Provenance, g, ariadne.ModeLayered, 0)
		if (errB == nil) != (errF == nil) {
			t.Fatalf("query %s: inproc err=%v, failover err=%v", def.Name, errB, errF)
		}
		if errB != nil {
			continue
		}
		sameQueryResults(t, qf, qb)
	}
}

// TestFailoverPoolExhausted kills the whole pool mid-run at the public API:
// with no survivor to fail over to, the run must still finish bit-identical
// via pin-local execution, with the shed capture accounted as gaps and the
// fallback visible in the net stats.
func TestFailoverPoolExhausted(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(7, 4, 23))
	if err != nil {
		t.Fatal(err)
	}
	const parts = 8
	commonOpts := func() []ariadne.Option {
		return []ariadne.Option{
			ariadne.WithMaxSupersteps(30),
			ariadne.WithPartitions(parts),
			ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}),
		}
	}
	base, err := ariadne.Run(g, emitSSSP{&analytics.SSSP{}}, commonOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Provenance.Close()

	const nw = 2
	workers := make([]*failoverWorker, nw)
	addrs := make([]string, nw)
	for i := range workers {
		workers[i] = &failoverWorker{t: t, g: g, parts: parts, addr: "127.0.0.1:0"}
		workers[i].start()
		addrs[i] = workers[i].addr
	}
	m := ariadne.NewMetrics()
	tr, err := transport.DialTCP(transport.TCPConfig{
		Addrs: addrs,
		Fingerprint: transport.Fingerprint{
			Partitions:  parts,
			NumVertices: g.NumVertices(),
			NumEdges:    g.NumEdges(),
		},
		MessageDeadline: 100 * time.Millisecond,
		MaxRetries:      1,
		Backoff:         time.Millisecond,
		Metrics:         m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	res, err := ariadne.Run(g, emitSSSP{&analytics.SSSP{}}, append(commonOpts(),
		ariadne.WithTransport(tr),
		ariadne.WithMetrics(m),
		ariadne.WithObserver(&killRejoin{killAt: 1, rejoinAt: -1, target: workers[0]}),
		ariadne.WithObserver(&killRejoin{killAt: 1, rejoinAt: -1, target: workers[1]}),
		ariadne.WithSupervision(ariadne.SuperviseConfig{
			MaxRetries: 2, Backoff: time.Millisecond, DegradeCaptureAfter: 1,
		}))...)
	if err != nil {
		t.Fatalf("pool-exhausted run: %v", err)
	}
	defer res.Provenance.Close()

	// Values and message accounting still bit-identical: pin-local
	// re-executes the same pure requests on the master.
	assertSameRun(t, "pool-exhausted", base, res)
	if n := res.NetStats[obs.MetricNetLocalFallbacks]; n == 0 {
		t.Error("expected pin-local fallbacks once the whole pool died")
	}
	if len(res.CaptureGaps) == 0 {
		t.Error("pin-local partitions shed capture; the gaps must be accounted")
	}
}
