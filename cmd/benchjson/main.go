// benchjson converts `go test -bench` output on stdin into a machine-readable
// JSON report and enforces the hardware-independent regression ratios for the
// barrier, spill, and query-evaluation microbenchmarks:
//
//	go test -run '^$' -bench 'Barrier|SpillPipeline|ParallelEval|LayeredEval' ./internal/... | \
//	    go run ./cmd/benchjson -out BENCH_micro.json -min-barrier-speedup 1.2
//
// Absolute ns/op is meaningless across CI runners, so the regression checks
// compare legs of the same run: the sequential/parallel barrier-phase ratio
// and the sync/async spill ratio. Exit status 1 means a ratio fell below its
// threshold (or an expected benchmark is missing).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line. Metrics maps unit → value for
// every "value unit" pair after the iteration count (ns/op, B/op, allocs/op,
// and custom b.ReportMetric units like barrier-ns/op).
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the BENCH_micro.json schema.
type Report struct {
	Benchmarks []Bench            `json:"benchmarks"`
	Ratios     map[string]float64 `json:"ratios"`
	Failures   []string           `json:"failures,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(lines []string) []Bench {
	var out []Bench
	for _, line := range lines {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		b := Bench{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
				b.Metrics[fields[i+1]] = v
			}
		}
		out = append(out, b)
	}
	return out
}

func metric(benches []Bench, name, unit string) (float64, bool) {
	for _, b := range benches {
		if b.Name == name {
			v, ok := b.Metrics[unit]
			return v, ok
		}
	}
	return 0, false
}

// ratio computes num/den for a named check; a missing benchmark or metric is
// reported as a failure so CI can't silently skip a check.
func ratio(r *Report, benches []Bench, key, numName, denName, unit string) float64 {
	num, okN := metric(benches, numName, unit)
	den, okD := metric(benches, denName, unit)
	if !okN || !okD || den == 0 {
		r.Failures = append(r.Failures, fmt.Sprintf("%s: missing %s for %s or %s", key, unit, numName, denName))
		return 0
	}
	v := num / den
	r.Ratios[key] = v
	return v
}

func main() {
	out := flag.String("out", "BENCH_micro.json", "output JSON path")
	minBarrier := flag.Float64("min-barrier-speedup", 1.2,
		"minimum sequential/parallel barrier-phase time ratio (uncombined leg)")
	minSpill := flag.Float64("min-spill-speedup", 0.7,
		"minimum sync/async spill pipeline time ratio. The benchmark now "+
			"interleaves layer construction with appends (the shape a real run "+
			"has), so on multi-core hardware the async leg overlaps encode+write "+
			"with the next layer's build and the ratio exceeds 1; on a "+
			"single-core runner no overlap is possible and the async leg pays "+
			"its per-layer scheduling handoffs (~0.9 observed), so the guard "+
			"only rejects async being materially slower than sync")
	minEval := flag.Float64("min-eval-speedup", 1.5,
		"minimum sequential/parallel8 eval-phase time ratio (the parallel leg "+
			"wins even on one core via the slot-compiled join path)")
	minLayered := flag.Float64("min-layered-speedup", 0.9,
		"minimum sequential/pipelined layered full-run time ratio")
	maxTransport := flag.Float64("max-transport-overhead", 10,
		"maximum tcp-loopback/in-process full-run time ratio (the transport "+
			"seam's serialization + framing cost; worker-resident state keeps "+
			"it well under 1.5x on a loopback container)")
	minBytesReduction := flag.Float64("min-bytes-reduction", 2,
		"minimum full-state/delta wire bytes-per-superstep ratio (how much "+
			"worker-resident delta exchanges shrink the exchanged traffic "+
			"versus shipping full frontiers every superstep)")
	maxTrace := flag.Float64("max-trace-overhead", 1.05,
		"maximum traced/untraced full-run time ratio over TCP loopback "+
			"(span tracing must cost at most 5% on an instrumented run)")
	minTupleReduction := flag.Float64("min-bytes-per-tuple-reduction", 3,
		"minimum v1/v2 on-disk bytes-per-tuple ratio on the WCC-shaped "+
			"store-format benchmark (how much the columnar layer format "+
			"shrinks spilled provenance)")
	minReplayProj := flag.Float64("min-replay-projection-speedup", 1.3,
		"minimum projected/unprojected facts-per-second ratio on the layered "+
			"replay of a vector-valued capture (what projection pushdown "+
			"saves when the query never reads the payload columns)")
	expect := flag.String("expect", "all",
		"comma-separated gate keys to enforce, or \"all\"; a gate not listed "+
			"is skipped entirely, so partial benchmark runs (make bench-store) "+
			"can reuse this binary without tripping missing-benchmark failures")
	flag.Parse()

	wanted := map[string]bool{}
	for _, k := range strings.Split(*expect, ",") {
		if k = strings.TrimSpace(k); k != "" {
			wanted[k] = true
		}
	}
	wants := func(key string) bool { return wanted["all"] || wanted[key] }

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fmt.Println(sc.Text()) // pass through so the raw log stays visible
		lines = append(lines, sc.Text())
	}
	benches := parse(lines)
	rep := &Report{Benchmarks: benches, Ratios: map[string]float64{}}

	if wants("barrier_phase_speedup") {
		if v := ratio(rep, benches, "barrier_phase_speedup",
			"BenchmarkBarrier/sequential/nocombine",
			"BenchmarkBarrier/parallel/nocombine", "barrier-ns/op"); v > 0 && v < *minBarrier {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("barrier_phase_speedup %.2f < %.2f", v, *minBarrier))
		}
		ratio(rep, benches, "barrier_run_speedup",
			"BenchmarkBarrier/sequential/nocombine",
			"BenchmarkBarrier/parallel/nocombine", "ns/op")
		ratio(rep, benches, "combine_barrier_speedup",
			"BenchmarkBarrier/sequential/combine",
			"BenchmarkBarrier/parallel/combine", "barrier-ns/op")
	}
	if wants("spill_async_speedup") {
		if v := ratio(rep, benches, "spill_async_speedup",
			"BenchmarkSpillPipeline/sync",
			"BenchmarkSpillPipeline/async", "ns/op"); v > 0 && v < *minSpill {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("spill_async_speedup %.2f < %.2f", v, *minSpill))
		}
	}
	if wants("eval_phase_speedup") {
		if v := ratio(rep, benches, "eval_phase_speedup",
			"BenchmarkParallelEval/sequential",
			"BenchmarkParallelEval/parallel8", "ns/op"); v > 0 && v < *minEval {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("eval_phase_speedup %.2f < %.2f", v, *minEval))
		}
		// Informational: throughput ratio of the same legs.
		if seq, ok := metric(benches, "BenchmarkParallelEval/sequential", "tuples/s"); ok {
			if par, ok := metric(benches, "BenchmarkParallelEval/parallel8", "tuples/s"); ok && seq > 0 {
				rep.Ratios["eval_tuples_speedup"] = par / seq
			}
		}
	}
	// transport_overhead is a ceiling, not a floor: the TCP leg is allowed
	// to cost more than in-process, but not unboundedly more.
	if wants("transport_overhead") {
		if v := ratio(rep, benches, "transport_overhead",
			"BenchmarkTransportRun/tcp",
			"BenchmarkTransportRun/inproc", "ns/op"); v > *maxTransport {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("transport_overhead %.2f > %.2f", v, *maxTransport))
		}
	}
	// bytes_per_superstep_reduction is a floor: the delta exchange must move
	// materially fewer bytes per superstep than the classic full-frontier
	// exchange of the same run (tcp-full forces ForceFullState).
	if wants("bytes_per_superstep_reduction") {
		if v := ratio(rep, benches, "bytes_per_superstep_reduction",
			"BenchmarkTransportRun/tcp-full",
			"BenchmarkTransportRun/tcp", "wire-B/ss"); v > 0 && v < *minBytesReduction {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("bytes_per_superstep_reduction %.2f < %.2f", v, *minBytesReduction))
		}
	}
	// Assembling and writing a wire frame must not allocate: the pooled
	// single-buffer encode is what lets delta exchanges pipeline without
	// GC pressure (the PR 9 invariant, like span_disabled_allocs for PR 2).
	if wants("wire_frame_allocs") {
		if v, ok := metric(benches, "BenchmarkWireFrame/write", "allocs/op"); !ok {
			rep.Failures = append(rep.Failures, "wire_frame_allocs: missing BenchmarkWireFrame/write")
		} else {
			rep.Ratios["wire_frame_allocs"] = v
			if v != 0 {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("wire_frame_allocs %.1f != 0 (frame write path allocates)", v))
			}
		}
	}
	// trace_overhead compares two TCP-loopback legs of the same run, one
	// with spans enabled. Like transport_overhead it is a ceiling.
	if wants("trace_overhead") {
		if v := ratio(rep, benches, "trace_overhead",
			"BenchmarkTraceRun/traced",
			"BenchmarkTraceRun/untraced", "ns/op"); v > *maxTrace {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("trace_overhead %.2f > %.2f", v, *maxTrace))
		}
	}
	// The disabled span path must be literally free: zero allocations per
	// RecordSpan call when no sink is installed (the PR 2 invariant).
	if wants("span_disabled_allocs") {
		if v, ok := metric(benches, "BenchmarkSpanDisabled", "allocs/op"); !ok {
			rep.Failures = append(rep.Failures, "span_disabled_allocs: missing BenchmarkSpanDisabled")
		} else {
			rep.Ratios["span_disabled_allocs"] = v
			if v != 0 {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("span_disabled_allocs %.1f != 0 (disabled span path allocates)", v))
			}
		}
	}
	if wants("layered_run_speedup") {
		if v := ratio(rep, benches, "layered_run_speedup",
			"BenchmarkLayeredEval/sequential",
			"BenchmarkLayeredEval/pipelined", "ns/op"); v > 0 && v < *minLayered {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("layered_run_speedup %.2f < %.2f", v, *minLayered))
		}
	}
	// bytes_per_tuple_reduction is a floor on storage compression: the same
	// WCC-shaped capture spilled by both formats, compared by on-disk bytes
	// per provenance tuple. The v2 columnar blocks (dictionary + delta/varint)
	// must be at least 3x denser than the v1 row format.
	if wants("bytes_per_tuple_reduction") {
		if v := ratio(rep, benches, "bytes_per_tuple_reduction",
			"BenchmarkStoreFormat/v1",
			"BenchmarkStoreFormat/v2", "B/tuple"); v > 0 && v < *minTupleReduction {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("bytes_per_tuple_reduction %.2f < %.2f", v, *minTupleReduction))
		}
	}
	// layered_replay_facts_s is a floor on projection pushdown: replaying a
	// vector-valued capture for a query that never touches the payload
	// columns must be materially faster when the store only materializes the
	// columns the query asked for.
	if wants("layered_replay_facts_s") {
		if v := ratio(rep, benches, "layered_replay_facts_s",
			"BenchmarkLayeredReplay/projected",
			"BenchmarkLayeredReplay/unprojected", "facts/s"); v > 0 && v < *minReplayProj {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("layered_replay_facts_s %.2f < %.2f", v, *minReplayProj))
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(rep.Failures) > 0 {
		for _, f := range rep.Failures {
			fmt.Fprintln(os.Stderr, "benchjson: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks, %d ratios)\n",
		*out, len(benches), len(rep.Ratios))
}
