// Command pqlc is the PQL checker: it parses, analyzes, and classifies a
// PQL query, reporting its strata, directedness class (Def. 5.2),
// VC-compatibility (Def. 4.1), and the evaluation modes it supports.
//
//	pqlc query.pql
//	pqlc -param eps=0.01 -param alpha=5 query.pql
//	echo 'p(X) :- value(X, D, I).' | pqlc -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ariadne/internal/cliutil"
	"ariadne/internal/pql"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/pql/eval"
)

func main() {
	var params cliutil.Params
	edbs := flag.String("edbs", "", "extra EDB declarations, e.g. prov_error:4,prov_prediction:4")
	explain := flag.Bool("explain", false, "report whether the query compiles to a vertex program")
	flag.Var(&params, "param", "query parameter name=value (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pqlc [-param name=value] [-edbs name:arity,...] <file.pql | ->")
		os.Exit(2)
	}

	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fatal(err)
	}

	env := analysis.NewEnv()
	if err := params.Apply(env); err != nil {
		fatal(err)
	}
	if err := cliutil.ApplyEDBs(env, *edbs); err != nil {
		fatal(err)
	}

	prog, err := pql.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	q, err := analysis.Analyze(prog, env)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("rules:          %d\n", len(q.Rules))
	fmt.Printf("class:          %s\n", q.Class)
	fmt.Printf("vc-compatible:  %v\n", q.VCCompatible)
	fmt.Printf("recursive:      %v\n", q.Recursive)
	fmt.Printf("online:         %v\n", q.Class.OnlineEvaluable())
	fmt.Printf("layered:        %v\n", q.Class.LayeredEvaluable())
	fmt.Println("strata:")
	for i, stratum := range q.Strata {
		for _, r := range stratum {
			fmt.Printf("  [%d] %s\n", i, r)
		}
	}
	if *explain {
		if _, err := eval.Compile(q, eval.NewDatabase(), emptyGraph{}); err != nil {
			fmt.Printf("evaluation:     interpretive Datalog (%v)\n", err)
		} else {
			fmt.Println("evaluation:     compiled query vertex program")
		}
	}
}

// emptyGraph satisfies eval.StaticGraph for compile-only analysis.
type emptyGraph struct{}

func (emptyGraph) NumVertices() int                        { return 0 }
func (emptyGraph) OutNeighbors(int64) ([]int64, []float64) { return nil, nil }
func (emptyGraph) InNeighbors(int64) []int64               { return nil }
func (emptyGraph) EdgeWeight(int64, int64) (float64, bool) { return 0, false }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pqlc:", err)
	os.Exit(1)
}
