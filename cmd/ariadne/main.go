// Command ariadne runs graph analytics with provenance capture and PQL
// querying on the built-in stand-in datasets or an edge-list file.
//
//	ariadne stats -dataset UK-02
//	ariadne run -analytic pagerank -dataset IN-04 -online apt:0.01
//	ariadne run -analytic sssp -graph edges.txt -capture full
//	ariadne trace -analytic sssp -dataset IN-04 -mode backward
//
// Fault tolerance: -checkpoint enables superstep checkpointing, -resume
// restarts a crashed run from its newest good checkpoint, and -faults
// injects deterministic worker panics or transient I/O errors for testing:
//
//	ariadne run -analytic pagerank -checkpoint ck -faults "compute:mode=panic:ss=7"
//	ariadne run -analytic pagerank -checkpoint ck -resume
//
// Supervision: -supervise wraps each partition worker with deadlines and
// bounded retry (partition-scoped recovery); -degrade-capture N sheds
// provenance capture for a partition after N consecutive capture failures
// instead of aborting (the analytic result is unchanged; shed ranges are
// queryable as capture_gap(P, F, T)). SIGINT/SIGTERM write a final
// checkpoint at the superstep barrier before exiting:
//
//	ariadne run -analytic pagerank -supervise -faults "compute:mode=panic:ss=3:part=1"
//	ariadne run -analytic pagerank -capture full -supervise -degrade-capture 2 \
//	    -faults "capture:part=0:times=3"
//
// Observability: -metrics-addr serves Prometheus text, expvar, pprof, the
// trace ring, per-superstep profiles, and the span timeline
// (/debug/ariadne/trace.json) over HTTP while the run is live; -stats-json
// writes the profiles to a file; -trace-buf sizes the ring; -trace-out
// enables distributed span tracing and writes a Chrome trace_event JSON
// (open in Perfetto or chrome://tracing) merging master and worker spans:
//
//	ariadne run -analytic pagerank -metrics-addr localhost:9090 -stats-json stats.json -trace-buf 4096
//	ariadne run -analytic pagerank -transport tcp -workers 2 -trace-out trace.json
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/cliutil"
	"ariadne/internal/engine"
	"ariadne/internal/fault"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/pql/analysis"
	"ariadne/internal/provenance"
	"ariadne/internal/queries"
	"ariadne/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "stats":
		err = cmdStats(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ariadne:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ariadne <command> [flags]

commands:
  stats   print dataset characteristics
  run     run an analytic with optional capture and online queries
  worker  serve partition computations to a distributed run (-transport tcp)
  trace   run an analytic with capture, then trace a vertex's lineage
  query   run an analytic, then evaluate a PQL file over its provenance
          (or online when the query's class allows it)

run "ariadne <command> -h" for flags; "ariadne-bench" regenerates the
paper's tables and figures; "pqlc" checks and classifies PQL files.`)
	os.Exit(2)
}

// loadGraph resolves -graph/-dataset/-size flags into a graph.
func loadGraph(graphFile, dataset string, size int, weightsForSSSP bool) (*graph.Graph, error) {
	if graphFile != "" {
		f, err := os.Open(graphFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
	d, err := gen.FindDataset(dataset, size-4) // same scaling as the bench harness
	if err != nil {
		return nil, err
	}
	_ = weightsForSSSP // weights are always generated
	return d.Build()
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dataset := fs.String("dataset", "IN-04", "built-in dataset name")
	graphFile := fs.String("graph", "", "edge-list file (overrides -dataset)")
	size := fs.Int("size", 0, "dataset size factor")
	samples := fs.Int("diameter-samples", 8, "BFS samples for the diameter estimate")
	fs.Parse(args)
	g, err := loadGraph(*graphFile, *dataset, *size, false)
	if err != nil {
		return err
	}
	st := graph.ComputeStats(g, *samples, 1)
	fmt.Println(st)
	fmt.Printf("max-out-degree=%d memory=%dB\n", st.MaxOutDeg, g.MemSize())
	return nil
}

func buildAnalytic(name string, g *graph.Graph, supersteps int) (ariadne.Program, *graph.Graph, []ariadne.Option, error) {
	switch name {
	case "pagerank":
		return &analytics.PageRank{Iterations: supersteps}, g,
			[]ariadne.Option{ariadne.WithMaxSupersteps(supersteps + 1)}, nil
	case "sssp":
		return &analytics.SSSP{Source: 0}, g, nil, nil
	case "wcc":
		return analytics.WCC{}, g.Undirected(), nil, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown analytic %q (want pagerank, sssp, or wcc)", name)
	}
}

// parseOnline maps -online specs to query definitions.
func parseOnline(spec string) (queries.Definition, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "apt":
		eps := 0.01
		if arg != "" {
			var err error
			if eps, err = strconv.ParseFloat(arg, 64); err != nil {
				return queries.Definition{}, err
			}
		}
		return queries.Apt(eps, nil), nil
	case "q4", "pagerank-check":
		return queries.PageRankCheck(), nil
	case "q5", "monotone-check":
		return queries.MonotoneCheck(), nil
	case "q6", "silent-change":
		return queries.SilentChange(), nil
	default:
		return queries.Definition{}, fmt.Errorf("unknown online query %q (want apt[:eps], q4, q5, q6)", spec)
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	analytic := fs.String("analytic", "pagerank", "pagerank, sssp, or wcc")
	dataset := fs.String("dataset", "IN-04", "built-in dataset name")
	graphFile := fs.String("graph", "", "edge-list file (overrides -dataset)")
	size := fs.Int("size", 0, "dataset size factor")
	supersteps := fs.Int("supersteps", 20, "PageRank iterations")
	captureSpec := fs.String("capture", "", "capture policy: full, lineage:<vertex>, or backward")
	spill := fs.String("spill", "", "spill directory for captured provenance")
	budget := fs.Int64("budget", 0, "capture memory budget in bytes (0 = unlimited)")
	syncSpill := fs.Bool("sync-spill", false, "write spilled layers inline in the barrier instead of on the async writer goroutine")
	spillQueue := fs.Int("spill-queue", 0, "async spill queue depth in layers (0 = default double-buffering)")
	reloadCache := fs.Int("reload-cache", 0, "spilled-layer reload cache capacity in layers (0 = default, negative = disabled)")
	storeFormat := fs.String("store-format", "v2", "spilled layer file format: v2 (compressed columnar) or v1 (row-oriented); reads always auto-detect")
	seqBarrier := fs.Bool("seq-barrier", false, "use the reference sequential superstep barrier instead of the sharded parallel one (bit-identical results, slower)")
	transportName := fs.String("transport", "inproc", "partition transport: inproc, or tcp to run partitions on worker processes")
	workers := fs.Int("workers", 0, "worker processes to spawn with -transport tcp (0 = 1)")
	workerAddrs := fs.String("worker-addrs", "", `comma-separated addresses of already-running "ariadne worker" processes (instead of -workers)`)
	partitions := fs.Int("partitions", 0, "partition count (0 = GOMAXPROCS; must match the workers' -partitions)")
	netDeadline := fs.Duration("net-deadline", 0, "per-message send/receive deadline with -transport tcp (0 = 5s default)")
	netHeartbeat := fs.Duration("net-heartbeat", time.Second, "worker liveness probe interval with -transport tcp (0 disables probing)")
	netHeartbeatMisses := fs.Int("net-heartbeat-misses", 0, "consecutive heartbeat misses before a worker is declared dead (0 = default of 3)")
	failover := fs.Bool("failover", true, "reassign a dead worker's partitions to surviving workers before falling back to master-local execution")
	evalWorkers := fs.Int("eval-workers", 0, "shard-parallel PQL evaluation workers for online queries (0 = auto, 1 = sequential rounds)")
	seqEval := fs.Bool("seq-eval", false, "use the reference sequential PQL evaluation path for online queries (identical results, slower)")
	online := fs.String("online", "", "comma-separated online queries (apt[:eps], q4, q5, q6)")
	faults := fs.String("faults", "", `fault-injection spec, e.g. "compute:mode=panic:ss=3:vertex=7" or "spill.write:times=2" (clauses joined with ;)`)
	workerFaults := fs.String("worker-faults", "", `fault spec forwarded to spawned workers (peer-mesh sites live worker-side), e.g. "peer.send:mode=drop:part=1:ss=2"`)
	fullState := fs.Bool("full-state", false, "disable worker-resident state: ship full frontiers and relay every outbox through the master (the pre-delta classic exchange)")
	noNetCompress := fs.Bool("no-net-compress", false, "disable snappy frame compression on the TCP transport (skip offering the capability at handshake)")
	ckDir := fs.String("checkpoint", "", "checkpoint directory (enables superstep checkpointing)")
	ckEvery := fs.Int("checkpoint-every", 5, "supersteps between checkpoints")
	ckKeep := fs.Int("checkpoint-keep", 3, "checkpoints to retain in -checkpoint (older ones are pruned)")
	resume := fs.Bool("resume", false, "resume from the newest good checkpoint in -checkpoint")
	supervised := fs.Bool("supervise", false, "supervise partition workers: deadlines, retry with backoff, partition-scoped recovery")
	partDeadline := fs.Duration("partition-deadline", 0, "fixed per-partition superstep deadline (0 with -supervise = adaptive multiple-of-median)")
	maxRetries := fs.Int("max-retries", 2, "partition re-executions per superstep before the run fails (with -supervise)")
	degradeAfter := fs.Int("degrade-capture", 0, "shed provenance capture for a partition after N consecutive capture failures (0 = capture failures abort the run)")
	stragglerMult := fs.Float64("straggler-multiple", 4, "flag a partition as straggler beyond this multiple of the median superstep duration")
	metricsAddr := fs.String("metrics-addr", "", `serve /metrics (Prometheus), /debug/vars, /debug/pprof, /trace, and /supersteps on this address while the run is live (e.g. "localhost:9090")`)
	statsJSON := fs.String("stats-json", "", "write per-superstep profile JSON to this file after the run")
	traceBuf := fs.Int("trace-buf", 0, "structured trace ring capacity in events (0 = tracing off)")
	traceOut := fs.String("trace-out", "", "enable distributed span tracing and write a Chrome trace_event JSON (Perfetto / chrome://tracing) to this file after the run")
	fs.Parse(args)

	if err := cliutil.ValidateRunFlags(cliutil.RunFlags{
		Transport:       *transportName,
		Workers:         *workers,
		WorkerAddrs:     *workerAddrs,
		Heartbeat:       *netHeartbeat,
		HeartbeatMisses: *netHeartbeatMisses,
		SeqBarrier:      *seqBarrier,
		Resume:          *resume,
		Checkpoint:      *ckDir,
	}); err != nil {
		return err
	}
	distributed := *transportName == "tcp"

	g, err := loadGraph(*graphFile, *dataset, *size, *analytic == "sssp")
	if err != nil {
		return err
	}
	prog, g, opts, err := buildAnalytic(*analytic, g, *supersteps)
	if err != nil {
		return err
	}
	nParts := *partitions
	if nParts <= 0 {
		nParts = runtime.GOMAXPROCS(0)
	}
	if *partitions > 0 || distributed {
		opts = append(opts, ariadne.WithPartitions(nParts))
	}

	var onlineNames []string
	if *online != "" {
		for _, spec := range strings.Split(*online, ",") {
			def, err := parseOnline(spec)
			if err != nil {
				return err
			}
			opts = append(opts, ariadne.WithOnlineQuery(def))
			onlineNames = append(onlineNames, def.Name)
		}
	}
	var layerFormat int
	switch *storeFormat {
	case "", "v2":
		layerFormat = provenance.FormatV2
	case "v1":
		layerFormat = provenance.FormatV1
	default:
		return fmt.Errorf("-store-format: unknown format %q (want v1 or v2)", *storeFormat)
	}
	if *captureSpec != "" {
		if *spill != "" {
			if err := os.MkdirAll(*spill, 0o755); err != nil {
				return fmt.Errorf("-spill: %w", err)
			}
		}
		storeCfg := provenance.StoreConfig{
			MemoryBudget: *budget,
			SpillDir:     *spill,
			SyncSpill:    *syncSpill,
			SpillQueue:   *spillQueue,
			ReloadCache:  *reloadCache,
			Format:       layerFormat,
		}
		var def queries.Definition
		switch {
		case *captureSpec == "full":
			def = queries.CaptureFull()
		case strings.HasPrefix(*captureSpec, "lineage:"):
			v, err := strconv.ParseUint(strings.TrimPrefix(*captureSpec, "lineage:"), 10, 32)
			if err != nil {
				return err
			}
			def = queries.CaptureForwardLineage(graph.VertexID(v))
		case *captureSpec == "backward":
			def = queries.CaptureBackwardCustom()
		default:
			return fmt.Errorf("unknown capture %q (want full, lineage:<vertex>, backward)", *captureSpec)
		}
		opts = append(opts, ariadne.WithCaptureQuery(def, storeCfg))
	}

	if *seqBarrier {
		opts = append(opts, ariadne.WithSequentialBarrier())
	}
	if *seqEval {
		opts = append(opts, ariadne.WithSequentialEval())
	} else if *evalWorkers != 0 {
		opts = append(opts, ariadne.WithEvalWorkers(*evalWorkers))
	}
	// The injector is shared between the engine (compute/capture sites) and
	// the TCP transport (net.send/net.recv sites), so one -faults spec can
	// target either side of the wire.
	var inj *ariadne.FaultInjector
	if *faults != "" {
		rules, err := fault.ParseSpec(*faults)
		if err != nil {
			return err
		}
		inj = fault.NewInjector(rules...)
		opts = append(opts, ariadne.WithFault(inj))
	}
	if *ckDir != "" {
		if err := os.MkdirAll(*ckDir, 0o755); err != nil {
			return fmt.Errorf("-checkpoint: %w", err)
		}
		opts = append(opts, ariadne.WithCheckpoint(*ckDir, *ckEvery))
		if *ckKeep > 0 {
			opts = append(opts, ariadne.WithCheckpointRetention(*ckKeep))
		}
	}
	// Distributed runs are always supervised: the supervision retry path is
	// what re-executes a partition when its worker dies, and the degradation
	// state is what sheds an unreachable partition's capture — so degraded
	// mode is armed by default over TCP (capture failures shed instead of
	// aborting; pass -degrade-capture to raise the threshold).
	if *supervised || distributed || *partDeadline > 0 || *degradeAfter > 0 {
		da := *degradeAfter
		if distributed && da == 0 {
			da = 1
		}
		opts = append(opts, ariadne.WithSupervision(ariadne.SuperviseConfig{
			Deadline:            *partDeadline,
			AdaptiveDeadline:    *partDeadline == 0 && *supervised,
			StragglerMultiple:   *stragglerMult,
			MaxRetries:          *maxRetries,
			DegradeCaptureAfter: da,
		}))
	}

	// Trap SIGINT/SIGTERM: the engine sees the cancellation at the next
	// superstep barrier and, when checkpointing is on, writes a final
	// checkpoint there before exiting — no more dying mid-superstep.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts = append(opts, ariadne.WithContext(ctx))

	// Observability: one registry shared by the run and the HTTP endpoints,
	// created up front so the endpoints are live while the run progresses.
	var metrics *ariadne.Metrics
	if *metricsAddr != "" || *statsJSON != "" || *traceBuf > 0 || *traceOut != "" {
		metrics = ariadne.NewMetrics()
		opts = append(opts, ariadne.WithMetrics(metrics))
		if *traceBuf > 0 {
			opts = append(opts, ariadne.WithTrace(*traceBuf))
		}
		if *traceOut != "" {
			opts = append(opts, ariadne.WithSpanTrace())
		}
	}
	if *metricsAddr != "" {
		srv, laddr, err := obs.Serve(*metricsAddr, metrics)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics (also /debug/vars /debug/pprof /trace /supersteps)\n", laddr)
	}

	if distributed {
		addrs, stopWorkers, err := resolveWorkers(ctx, *workerAddrs, *workers, nParts,
			*analytic, *dataset, *graphFile, *size, *supersteps, *workerFaults)
		if err != nil {
			return err
		}
		defer stopWorkers()
		tr, err := transport.DialTCP(transport.TCPConfig{
			Addrs: addrs,
			Fingerprint: transport.Fingerprint{
				Partitions:  nParts,
				NumVertices: g.NumVertices(),
				NumEdges:    g.NumEdges(),
			},
			MessageDeadline:   *netDeadline,
			MaxRetries:        *maxRetries,
			HeartbeatInterval: *netHeartbeat,
			HeartbeatMisses:   *netHeartbeatMisses,
			NoFailover:        !*failover,
			ForceFullState:    *fullState,
			NoCompress:        *noNetCompress,
			Fault:             inj,
			Metrics:           metrics,
		})
		if err != nil {
			return err
		}
		defer tr.Close()
		opts = append(opts, ariadne.WithTransport(tr))
		fmt.Printf("transport: tcp, %d worker(s), %d partitions\n", len(addrs), nParts)
	}

	var res *ariadne.Result
	if *resume {
		res, err = ariadne.Resume(g, prog, opts...)
	} else {
		res, err = ariadne.Run(g, prog, opts...)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) && *ckDir != "" {
			return fmt.Errorf("%w\na final checkpoint was written at the superstep barrier; rerun with -resume to continue from %s", err, *ckDir)
		}
		var ce *ariadne.CrashError
		if errors.As(err, &ce) && *ckDir != "" {
			return fmt.Errorf("%w\nrerun with -resume to restart from the newest checkpoint in %s", err, *ckDir)
		}
		return err
	}
	if res.ResumedFrom > 0 {
		fmt.Printf("resumed from checkpoint at superstep %d\n", res.ResumedFrom)
	}
	fmt.Printf("analytic=%s supersteps=%d messages=%d time=%v\n",
		*analytic, res.Stats.Supersteps, res.Stats.MessagesSent, res.Duration.Round(1e6))
	if res.Stats.PartitionRetries > 0 || res.Stats.DeadlineHits > 0 || res.Stats.StragglerFlags > 0 {
		fmt.Printf("supervision: retries=%d deadline-hits=%d stragglers=%d\n",
			res.Stats.PartitionRetries, res.Stats.DeadlineHits, res.Stats.StragglerFlags)
	}
	if res.Provenance != nil {
		defer res.Provenance.Close()
		fmt.Printf("provenance: layers=%d tuples=%d bytes=%d (%.1fx input) spilled=%d\n",
			res.Provenance.NumLayers(), res.Provenance.TotalTuples(), res.Provenance.TotalBytes(),
			float64(res.Provenance.TotalBytes())/float64(g.MemSize()), res.Provenance.SpilledLayers())
	}
	for _, gap := range res.CaptureGaps {
		fmt.Printf("capture gap: partition=%d supersteps=%d..%d (%s)\n", gap.Partition, gap.From, gap.To, gap.Reason)
	}
	for _, name := range onlineNames {
		qr := res.Query(name)
		fmt.Printf("query %s:\n", name)
		for _, rel := range qr.DerivedRelations() {
			fmt.Printf("  %-18s %d tuples\n", rel.Name, rel.Count)
		}
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, *analytic, res); err != nil {
			return fmt.Errorf("-stats-json: %w", err)
		}
		fmt.Printf("per-superstep stats written to %s\n", *statsJSON)
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, metrics.ChromeTrace(), 0o644); err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		fmt.Printf("span timeline written to %s (open in Perfetto or chrome://tracing)\n", *traceOut)
		if buckets := metrics.TransportBuckets(); buckets != nil {
			fmt.Printf("transport buckets: serialize=%v wire=%v worker-compute=%v retry=%v\n",
				time.Duration(buckets["serialize"]), time.Duration(buckets["wire"]),
				time.Duration(buckets["worker_compute"]), time.Duration(buckets["retry"]))
		}
	}
	return nil
}

// cmdWorker serves partition computations to a distributed run. The worker
// loads the same graph and analytic as its master — state stays local; only
// frontier values and messages cross the wire — and verifies the agreement
// through the handshake fingerprint.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "address to listen on")
	analytic := fs.String("analytic", "pagerank", "pagerank, sssp, or wcc (must match the master)")
	dataset := fs.String("dataset", "IN-04", "built-in dataset name (must match the master)")
	graphFile := fs.String("graph", "", "edge-list file (overrides -dataset)")
	size := fs.Int("size", 0, "dataset size factor")
	supersteps := fs.Int("supersteps", 20, "PageRank iterations (must match the master)")
	partitions := fs.Int("partitions", 0, "partition count (0 = GOMAXPROCS; must match the master)")
	faults := fs.String("faults", "", `worker-side fault-injection spec for the peer-mesh sites, e.g. "peer.send:mode=drop:part=1:ss=2" (clauses joined with ;)`)
	fs.Parse(args)

	g, err := loadGraph(*graphFile, *dataset, *size, *analytic == "sssp")
	if err != nil {
		return err
	}
	prog, g, _, err := buildAnalytic(*analytic, g, *supersteps)
	if err != nil {
		return err
	}
	nParts := *partitions
	if nParts <= 0 {
		nParts = runtime.GOMAXPROCS(0)
	}
	var inj *fault.Injector
	if *faults != "" {
		rules, err := fault.ParseSpec(*faults)
		if err != nil {
			return err
		}
		inj = fault.NewInjector(rules...)
	}
	x, err := engine.NewExecutor(g, prog, engine.Config{Partitions: nParts, Fault: inj})
	if err != nil {
		return err
	}
	w, err := transport.NewWorker(x, *listen, nil)
	if err != nil {
		return err
	}
	// The master scrapes this exact line off our stdout to learn the port.
	fmt.Printf("worker: listening %s\n", w.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Graceful drain: finish the in-flight request, tell the master to
		// reroute our partitions, then exit 0. A master mid-run carries on
		// with the surviving workers; a second signal still kills us hard.
		w.Drain()
	}()
	err = w.Serve()
	if ctx.Err() != nil {
		<-drained
		fmt.Println("worker: drained, exiting")
		return nil
	}
	return err
}

// resolveWorkers either splits -worker-addrs or spawns -workers worker
// processes of this same binary, forwarding the graph and analytic flags so
// every process deterministically builds the identical graph. The returned
// cleanup kills spawned workers (a no-op in attach mode).
func resolveWorkers(ctx context.Context, addrSpec string, n, nParts int,
	analytic, dataset, graphFile string, size, supersteps int, workerFaults string) ([]string, func(), error) {
	if addrSpec != "" {
		return strings.Split(addrSpec, ","), func() {}, nil
	}
	if n <= 0 {
		n = 1
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	wargs := []string{"worker", "-listen", "127.0.0.1:0",
		"-analytic", analytic,
		"-supersteps", strconv.Itoa(supersteps),
		"-partitions", strconv.Itoa(nParts)}
	if graphFile != "" {
		wargs = append(wargs, "-graph", graphFile)
	} else {
		wargs = append(wargs, "-dataset", dataset, "-size", strconv.Itoa(size))
	}
	if workerFaults != "" {
		wargs = append(wargs, "-faults", workerFaults)
	}
	var cmds []*exec.Cmd
	stop := func() {
		for _, c := range cmds {
			if c.Process != nil {
				c.Process.Kill()
			}
			c.Wait()
		}
	}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		cmd := exec.CommandContext(ctx, exe, wargs...)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			stop()
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			stop()
			return nil, nil, err
		}
		cmds = append(cmds, cmd)
		sc := bufio.NewScanner(out)
		addr := ""
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "worker: listening "); ok {
				addr = a
				break
			}
			fmt.Println(sc.Text())
		}
		if addr == "" {
			stop()
			return nil, nil, fmt.Errorf("worker %d exited before reporting its address", i)
		}
		addrs = append(addrs, addr)
		go func() { // keep draining so the worker never blocks on a full pipe
			for sc.Scan() {
			}
		}()
	}
	return addrs, stop, nil
}

// writeStatsJSON dumps the run summary and per-superstep profiles.
func writeStatsJSON(path, analytic string, res *ariadne.Result) error {
	out := struct {
		Analytic         string               `json:"analytic"`
		Supersteps       int                  `json:"supersteps"`
		Messages         int64                `json:"messages_sent"`
		DurationMS       float64              `json:"duration_ms"`
		ResumedFrom      int                  `json:"resumed_from,omitempty"`
		PartitionRetries int64                `json:"partition_retries,omitempty"`
		DeadlineHits     int64                `json:"deadline_hits,omitempty"`
		StragglerFlags   int64                `json:"straggler_flags,omitempty"`
		CaptureGaps      []ariadne.CaptureGap `json:"capture_gaps,omitempty"`
		// Net holds the run's ariadne_net_* transport counters plus the
		// trace-ring drop counter (ariadne_trace_dropped_total); empty for
		// purely local runs.
		Net map[string]int64 `json:"net,omitempty"`
		// TransportBuckets decomposes transport overhead by cause
		// (serialize, wire, worker_compute, retry), in nanoseconds; present
		// only when span tracing was on.
		TransportBuckets map[string]int64           `json:"transport_buckets,omitempty"`
		Profile          []ariadne.SuperstepProfile `json:"profile"`
	}{
		Analytic:         analytic,
		Supersteps:       res.Stats.Supersteps,
		Messages:         res.Stats.MessagesSent,
		DurationMS:       float64(res.Duration.Microseconds()) / 1e3,
		ResumedFrom:      res.ResumedFrom,
		PartitionRetries: res.Stats.PartitionRetries,
		DeadlineHits:     res.Stats.DeadlineHits,
		StragglerFlags:   res.Stats.StragglerFlags,
		CaptureGaps:      res.CaptureGaps,
		Net:              res.NetStats,
		Profile:          res.Profile,
	}
	if res.Metrics != nil {
		out.TransportBuckets = res.Metrics.TransportBuckets()
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	analytic := fs.String("analytic", "sssp", "pagerank, sssp, or wcc")
	dataset := fs.String("dataset", "IN-04", "built-in dataset name")
	graphFile := fs.String("graph", "", "edge-list file (overrides -dataset)")
	size := fs.Int("size", 0, "dataset size factor")
	supersteps := fs.Int("supersteps", 20, "PageRank iterations")
	mode := fs.String("mode", "auto", "auto, online, layered, or naive")
	evalWorkers := fs.Int("eval-workers", 0, "shard-parallel PQL evaluation workers (0 = auto, 1 = sequential rounds)")
	seqEval := fs.Bool("seq-eval", false, "use the reference sequential PQL evaluation path (identical results, slower)")
	var params cliutil.Params
	fs.Var(&params, "param", "query parameter name=value (repeatable)")
	edbs := fs.String("edbs", "", "extra EDB declarations, e.g. prov_error:4")
	limit := fs.Int("limit", 10, "rows to print per result relation")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: ariadne query [flags] <file.pql>")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}

	env := analysis.NewEnv()
	if err := params.Apply(env); err != nil {
		return err
	}
	if err := cliutil.ApplyEDBs(env, *edbs); err != nil {
		return err
	}
	def := queries.Definition{Name: fs.Arg(0), Source: string(src), Env: env}
	cls, vc, err := ariadne.Classify(def)
	if err != nil {
		return err
	}
	fmt.Printf("query class=%s vc-compatible=%v\n", cls, vc)

	g, err := loadGraph(*graphFile, *dataset, *size, *analytic == "sssp")
	if err != nil {
		return err
	}
	prog, g, opts, err := buildAnalytic(*analytic, g, *supersteps)
	if err != nil {
		return err
	}

	var evalOpts []ariadne.EvalOption
	if *seqEval {
		evalOpts = append(evalOpts, ariadne.SequentialEval())
	} else if *evalWorkers != 0 {
		evalOpts = append(evalOpts, ariadne.EvalWorkers(*evalWorkers))
	}

	var qr *ariadne.QueryResult
	if *mode == "online" || (*mode == "auto" && (cls == "local" || cls == "forward")) {
		runOpts := append(opts, ariadne.WithOnlineQuery(def))
		if *seqEval {
			runOpts = append(runOpts, ariadne.WithSequentialEval())
		} else if *evalWorkers != 0 {
			runOpts = append(runOpts, ariadne.WithEvalWorkers(*evalWorkers))
		}
		res, err := ariadne.Run(g, prog, runOpts...)
		if err != nil {
			return err
		}
		fmt.Printf("evaluated online alongside %s (%d supersteps, %v)\n",
			*analytic, res.Stats.Supersteps, res.Duration.Round(1e6))
		qr = res.Query(def.Name)
	} else {
		res, err := ariadne.Run(g, prog, append(opts,
			ariadne.WithCaptureQuery(queries.CaptureFull(), provenance.StoreConfig{}))...)
		if err != nil {
			return err
		}
		offMode := ariadne.ModeLayered
		if *mode == "naive" {
			offMode = ariadne.ModeNaive
		}
		qr, err = ariadne.QueryOffline(def, res.Provenance, g, offMode, 0, evalOpts...)
		if err != nil {
			return err
		}
		fmt.Printf("captured %d layers (%d tuples), evaluated %s offline\n",
			res.Provenance.NumLayers(), res.Provenance.TotalTuples(), *mode)
	}

	for _, rel := range qr.DerivedRelations() {
		fmt.Printf("%s: %d tuples\n", rel.Name, rel.Count)
		for i, row := range ariadne.Tuples(qr, rel.Name) {
			if i == *limit {
				fmt.Println("  ...")
				break
			}
			fmt.Printf("  %v\n", row)
		}
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	analytic := fs.String("analytic", "sssp", "pagerank, sssp, or wcc")
	dataset := fs.String("dataset", "IN-04", "built-in dataset name")
	graphFile := fs.String("graph", "", "edge-list file (overrides -dataset)")
	size := fs.Int("size", 0, "dataset size factor")
	supersteps := fs.Int("supersteps", 20, "PageRank iterations")
	mode := fs.String("mode", "backward", "backward or forward")
	vertex := fs.Int64("vertex", -1, "trace start vertex (-1 = auto)")
	custom := fs.Bool("custom", false, "use custom (reduced) capture, paper Queries 11+12")
	fs.Parse(args)

	g, err := loadGraph(*graphFile, *dataset, *size, *analytic == "sssp")
	if err != nil {
		return err
	}
	prog, g, opts, err := buildAnalytic(*analytic, g, *supersteps)
	if err != nil {
		return err
	}

	switch *mode {
	case "backward":
		def := queries.CaptureFull()
		if *custom {
			def = queries.CaptureBackwardCustom()
		}
		res, err := ariadne.Run(g, prog, append(opts, ariadne.WithCaptureQuery(def, provenance.StoreConfig{}))...)
		if err != nil {
			return err
		}
		store := res.Provenance
		sigma := store.NumLayers() - 1
		alpha := graph.VertexID(*vertex)
		if *vertex < 0 {
			last, err := store.Layer(sigma)
			if err != nil {
				return err
			}
			if len(last.Records) == 0 {
				return fmt.Errorf("no vertex active in the last superstep")
			}
			alpha = last.Records[0].Vertex
		}
		traceDef := queries.BackwardTrace(alpha, sigma)
		if *custom {
			traceDef = queries.BackwardTraceCustom(alpha, sigma)
		}
		qr, err := ariadne.QueryOffline(traceDef, store, g, ariadne.ModeLayered, 0)
		if err != nil {
			return err
		}
		fmt.Printf("backward trace from vertex %d at superstep %d:\n", alpha, sigma)
		fmt.Printf("  provenance nodes visited: %d\n", ariadne.Count(qr, "back_trace"))
		fmt.Printf("  lineage (inputs at superstep 0): %d vertices\n", ariadne.Count(qr, "back_lineage"))
		return nil
	case "forward":
		alpha := graph.VertexID(0)
		if *vertex >= 0 {
			alpha = graph.VertexID(*vertex)
		}
		res, err := ariadne.Run(g, prog, append(opts,
			ariadne.WithCaptureQuery(queries.CaptureForwardLineage(alpha), provenance.StoreConfig{}))...)
		if err != nil {
			return err
		}
		fmt.Printf("forward lineage of vertex %d: %d influenced vertices, %d tuples, %d bytes\n",
			alpha, res.Provenance.DistinctVertices(), res.Provenance.TotalTuples(), res.Provenance.TotalBytes())
		return nil
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}
