// Command ariadne-bench regenerates the paper's evaluation (§6): every
// table and figure has a named experiment. Examples:
//
//	ariadne-bench -exp all
//	ariadne-bench -exp table3 -size 1
//	ariadne-bench -exp fig8 -datasets IN-04,UK-02 -repeat 3
//
// Sizes are laptop-scale stand-ins for the paper's web crawls; see
// DESIGN.md §2 for the substitution rationale and EXPERIMENTS.md for
// paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ariadne/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table2|table3|table4|table5|table6|fig7|fig8|fig9|fig10|fig11|fig12|als-capture|all")
		size     = flag.Int("size", 0, "dataset size factor (each +1 doubles every dataset)")
		repeat   = flag.Int("repeat", 1, "timed repetitions per configuration (trimmed mean)")
		ss       = flag.Int("supersteps", 20, "PageRank iterations")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (IN-04,UK-02,AR-05,UK-05)")
	)
	flag.Parse()

	cfg := bench.Config{
		SizeFactor: *size,
		Supersteps: *ss,
		Repeat:     *repeat,
		Out:        os.Stdout,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	r := bench.NewRunner(cfg)

	run := func(name string) error {
		switch name {
		case "table2":
			_, err := r.Table2()
			return err
		case "table3":
			_, err := r.Table3()
			return err
		case "table4":
			_, err := r.Table4()
			return err
		case "table5", "fig10-pagerank":
			_, err := r.Table5()
			return err
		case "table6", "fig10-sssp":
			_, err := r.Table6()
			return err
		case "fig10":
			if _, err := r.Table5(); err != nil {
				return err
			}
			if _, err := r.Table6(); err != nil {
				return err
			}
			_, err := r.Fig10WCC()
			return err
		case "fig7":
			_, err := r.Fig7()
			return err
		case "fig8":
			_, err := r.Fig8()
			return err
		case "fig9":
			_, err := r.Fig9()
			return err
		case "fig11":
			_, err := r.Fig11()
			return err
		case "fig12":
			_, err := r.Fig12()
			return err
		case "als-capture":
			dir, err := os.MkdirTemp("", "ariadne-spill-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			_, err = r.ALSCapture(dir)
			return err
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{
			"table2", "table3", "table4", "fig7", "fig8", "fig9",
			"fig10", "fig11", "fig12", "als-capture",
		}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "ariadne-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
