// Command chaos is the seeded chaos-soak harness for the distributed
// runtime: it runs an analytic twice — once undisturbed in process, once
// over a pool of TCP workers while a deterministic, seed-derived schedule
// of worker kills, restarts, link delays, and connection resets plays out
// at the superstep barriers — and then requires the disturbed run to be
// indistinguishable where it must be:
//
//   - final vertex values bit-identical to the undisturbed run;
//   - provenance layers tuple-identical (failover re-executes the lost
//     partition on a survivor, so capture is preserved, not shed);
//   - zero capture gaps and zero master-local fallbacks — the recovery
//     ladder must stop at in-pool failover while any worker survives;
//   - failover counters consistent with the schedule: at least one death
//     and one reassignment observed, never more deaths than kills nor more
//     rejoins than restarts.
//
// The verdict and the full accounting are written as JSON (-out), and the
// exit status is non-zero on any mismatch, so CI can archive the report
// and fail the build. A failing seed replays exactly: the schedule is a
// pure function of (seed, workers, supersteps, partitions).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"time"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/engine"
	"ariadne/internal/fault"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/obs"
	"ariadne/internal/queries"
	"ariadne/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

// workerProc is one soak worker with a stable address across restarts, the
// in-process stand-in for an "ariadne worker" OS process.
type workerProc struct {
	addr string
	w    *transport.Worker
	mk   func() (*engine.Executor, error)
}

func (p *workerProc) start() error {
	// A mid-stream kill is armed, not immediate: a worker left idle by sticky
	// failover may never serve the triggering exec and still hold its port at
	// restart time. Sever it first — Close is a no-op if the arm already
	// fired — so the relisten on the stable address always succeeds.
	if p.w != nil {
		p.w.Close()
	}
	x, err := p.mk()
	if err != nil {
		return err
	}
	w, err := transport.NewWorker(x, p.addr, nil)
	if err != nil {
		return err
	}
	p.addr = w.Addr()
	p.w = w
	go w.Serve()
	return nil
}

// kill severs the worker abruptly: listener and connections closed, no
// reply, no drain frame — the kill -9 of the schedule.
func (p *workerProc) kill() { p.w.Close() }

// driver applies the schedule's kill/restart events at superstep barriers.
// Events for superstep s fire at the barrier that completes s, so their
// effect lands in superstep s+1 — always mid-run, never mid-exchange.
type driver struct {
	plan    fault.ChaosSchedule
	workers []*workerProc
	next    int
	applied []string
	err     error
}

func (d *driver) NeedsRawMessages() bool { return false }
func (d *driver) Finish(int) error       { return nil }

func (d *driver) ObserveSuperstep(v *engine.SuperstepView) error {
	for d.next < len(d.plan.Events) && d.plan.Events[d.next].Superstep <= v.Superstep {
		ev := d.plan.Events[d.next]
		d.next++
		switch ev.Action {
		case fault.ChaosKill:
			d.workers[ev.Worker].kill()
		case fault.ChaosKillMid:
			// Arm the worker to die after serving one more exec: the death
			// lands inside the next superstep's delta stream, after its
			// fragments may have partially routed, not cleanly at a barrier.
			w := d.workers[ev.Worker].w
			w.KillAfter(int(w.Execs()) + 1)
		case fault.ChaosRestart:
			if err := d.workers[ev.Worker].start(); err != nil {
				// Failing to restart breaks the schedule's ends-alive
				// invariant; abort rather than soak a different scenario.
				d.err = fmt.Errorf("restart worker %d: %w", ev.Worker, err)
				return d.err
			}
		default:
			continue // delay/reset ride in the transport's fault injector
		}
		d.applied = append(d.applied,
			fmt.Sprintf("ss=%d %s worker %d", v.Superstep, ev.Action, ev.Worker))
	}
	return nil
}

// report is the CHAOS_<seed>.json archive: the schedule, what fired, every
// failover counter, and the verdict.
type report struct {
	Seed       int64                `json:"seed"`
	Workers    int                  `json:"workers"`
	Partitions int                  `json:"partitions"`
	Supersteps int                  `json:"supersteps"`
	Analytic   string               `json:"analytic"`
	Dataset    string               `json:"dataset"`
	Plan       fault.ChaosSchedule  `json:"plan"`
	Applied    []string             `json:"applied"`
	NetStats   map[string]int64     `json:"net_stats"`
	Gaps       []ariadne.CaptureGap `json:"capture_gaps,omitempty"`
	Failures   []string             `json:"failures,omitempty"`
	OK         bool                 `json:"ok"`
}

func run() error {
	seed := flag.Int64("seed", 1, "chaos schedule seed (same seed, same disturbances)")
	nWorkers := flag.Int("workers", 3, "TCP workers in the pool (>= 2 so kills leave a survivor)")
	supersteps := flag.Int("supersteps", 20, "PageRank iterations / superstep horizon for the schedule")
	analytic := flag.String("analytic", "pagerank", "pagerank, sssp, or wcc")
	dataset := flag.String("dataset", "IN-04", "built-in dataset name")
	size := flag.Int("size", 0, "dataset size factor")
	partitions := flag.Int("partitions", 8, "partition count")
	killMid := flag.Bool("kill-mid", false,
		"turn every scheduled kill into a mid-delta-stream kill (the worker dies "+
			"while serving the next superstep, not cleanly at a barrier) and "+
			"checkpoint the soak run so recovery re-hydrates worker-resident "+
			"state from the last checkpoint blob plus replayed supersteps")
	out := flag.String("out", "", "report JSON path (default CHAOS_<seed>.json)")
	flag.Parse()
	if *out == "" {
		*out = fmt.Sprintf("CHAOS_%d.json", *seed)
	}
	if *nWorkers < 2 {
		return fmt.Errorf("-workers %d: the soak needs at least 2 so a kill leaves a survivor", *nWorkers)
	}

	d, err := gen.FindDataset(*dataset, *size-4) // same scaling as cmd/ariadne
	if err != nil {
		return err
	}
	g, err := d.Build()
	if err != nil {
		return err
	}
	mkProg, g, baseOpts, err := buildAnalytic(*analytic, g, *supersteps)
	if err != nil {
		return err
	}
	opts := func() []ariadne.Option {
		return append(append([]ariadne.Option{},
			ariadne.WithPartitions(*partitions),
			ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{})),
			baseOpts...)
	}

	// Leg 1: the undisturbed in-process reference.
	base, err := ariadne.Run(g, mkProg(), opts()...)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	defer base.Provenance.Close()

	// The schedule horizon is the run's real superstep count: an analytic
	// that converges early (sssp, wcc) would otherwise outlive its chaos.
	plan := fault.ChaosPlan(*seed, *nWorkers, base.Stats.Supersteps, *partitions)
	if plan.Kills() == 0 {
		return fmt.Errorf("seed %d yields no kill over %d supersteps; nothing would be soaked",
			*seed, base.Stats.Supersteps)
	}
	if *killMid {
		plan = plan.MidStream()
	}
	restarts := 0
	for _, ev := range plan.Events {
		if ev.Action == fault.ChaosRestart {
			restarts++
		}
	}

	// Leg 2: the same run over a worker pool with the schedule playing out.
	workers := make([]*workerProc, *nWorkers)
	addrs := make([]string, *nWorkers)
	for i := range workers {
		p := &workerProc{addr: "127.0.0.1:0", mk: func() (*engine.Executor, error) {
			return engine.NewExecutor(g, mkProg(), engine.Config{Partitions: *partitions})
		}}
		if err := p.start(); err != nil {
			return err
		}
		defer p.w.Close()
		workers[i] = p
		addrs[i] = p.addr
	}
	m := ariadne.NewMetrics()
	tr, err := transport.DialTCP(transport.TCPConfig{
		Addrs: addrs,
		Fingerprint: transport.Fingerprint{
			Partitions:  *partitions,
			NumVertices: g.NumVertices(),
			NumEdges:    g.NumEdges(),
		},
		// A killed worker fails fast through its closed connection — dead
		// peers cost refused dials, not expired deadlines — so the deadline
		// and miss budget can stay generous: tight values would misread
		// race-detector or loaded-CI slowness as deaths and wreck the
		// soak's exact failover accounting. The heartbeat's job here is the
		// restarted worker's prompt redial+rejoin, and 100ms does that.
		MessageDeadline:   2 * time.Second,
		MaxRetries:        2,
		Backoff:           time.Millisecond,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMisses:   5,
		Fault:             fault.NewInjector(plan.NetRules()...),
		Metrics:           m,
	})
	if err != nil {
		return err
	}
	defer tr.Close()
	drv := &driver{plan: plan, workers: workers}
	soakOpts := append(opts(),
		ariadne.WithTransport(tr),
		ariadne.WithMetrics(m),
		ariadne.WithObserver(drv),
		ariadne.WithSupervision(ariadne.SuperviseConfig{
			MaxRetries: 2, Backoff: time.Millisecond, DegradeCaptureAfter: 1,
		}))
	if *killMid {
		// Checkpoint the soak leg so a mid-stream death re-hydrates the lost
		// partitions from the last checkpoint blob plus replayed supersteps —
		// the recovery path under test — rather than replaying from zero.
		ckDir, err := os.MkdirTemp("", "chaos-ck-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(ckDir)
		soakOpts = append(soakOpts, ariadne.WithCheckpoint(ckDir, 3))
	}
	soak, err := ariadne.Run(g, mkProg(), soakOpts...)
	if drv.err != nil {
		return drv.err
	}
	if err != nil {
		return fmt.Errorf("soak run (seed %d): %w", *seed, err)
	}
	defer soak.Provenance.Close()

	rep := report{
		Seed: *seed, Workers: *nWorkers, Partitions: *partitions,
		Supersteps: base.Stats.Supersteps, Analytic: *analytic, Dataset: *dataset,
		Plan: plan, Applied: drv.applied, NetStats: soak.NetStats, Gaps: soak.CaptureGaps,
	}
	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}

	// Differential: the soak must be indistinguishable from the reference.
	if base.Stats.Supersteps != soak.Stats.Supersteps {
		fail("supersteps %d != reference %d", soak.Stats.Supersteps, base.Stats.Supersteps)
	}
	if base.Stats.MessagesSent != soak.Stats.MessagesSent ||
		base.Stats.MessagesDelivered != soak.Stats.MessagesDelivered {
		fail("message accounting %d/%d != reference %d/%d",
			soak.Stats.MessagesSent, soak.Stats.MessagesDelivered,
			base.Stats.MessagesSent, base.Stats.MessagesDelivered)
	}
	for v := range base.Values {
		if !reflect.DeepEqual(base.Values[v].AppendBinary(nil), soak.Values[v].AppendBinary(nil)) {
			fail("vertex %d value %v != reference %v (must be bit-identical)", v, soak.Values[v], base.Values[v])
			break
		}
	}
	if base.Provenance.NumLayers() != soak.Provenance.NumLayers() {
		fail("provenance layers %d != reference %d", soak.Provenance.NumLayers(), base.Provenance.NumLayers())
	} else {
		if base.Provenance.TotalTuples() != soak.Provenance.TotalTuples() {
			fail("provenance tuples %d != reference %d", soak.Provenance.TotalTuples(), base.Provenance.TotalTuples())
		}
		for i := 0; i < base.Provenance.NumLayers(); i++ {
			lb, errB := base.Provenance.Layer(i)
			ls, errS := soak.Provenance.Layer(i)
			if errB != nil || errS != nil {
				fail("layer %d read: ref %v, soak %v", i, errB, errS)
				break
			}
			if !reflect.DeepEqual(lb, ls) {
				fail("provenance layer %d differs from reference", i)
				break
			}
		}
	}

	// Accounting: failover, not shedding, must have absorbed every kill.
	if len(soak.CaptureGaps) != 0 {
		fail("capture gaps %v: failover should preserve capture with survivors in the pool", soak.CaptureGaps)
	}
	if n := soak.NetStats[obs.MetricNetLocalFallbacks]; n != 0 {
		fail("%d master-local fallbacks: the ladder must stop at in-pool failover", n)
	}
	deaths := soak.NetStats[obs.MetricFailoverDeaths]
	reassigns := soak.NetStats[obs.MetricFailoverReassignments]
	rejoins := soak.NetStats[obs.MetricFailoverRejoins]
	if deaths == 0 {
		fail("no worker death recorded despite %d scheduled kills", plan.Kills())
	}
	if reassigns == 0 {
		fail("no partition reassignment recorded despite %d scheduled kills", plan.Kills())
	}
	if deaths > int64(plan.Kills()) {
		fail("%d deaths recorded for %d kills: deaths double-counted", deaths, plan.Kills())
	}
	if rejoins > int64(restarts) {
		fail("%d rejoins recorded for %d restarts: rejoins double-counted", rejoins, restarts)
	}
	if *killMid && soak.NetStats[obs.MetricNetStateReseeds] == 0 {
		fail("no resident-state reseed recorded despite %d mid-stream kills: "+
			"the re-hydration path was not exercised", plan.Kills())
	}

	rep.OK = len(rep.Failures) == 0
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("chaos seed=%d workers=%d kills=%d restarts=%d deaths=%d reassignments=%d rejoins=%d drains=%d -> %s\n",
		*seed, *nWorkers, plan.Kills(), restarts, deaths, reassigns, rejoins,
		soak.NetStats[obs.MetricFailoverDrains], *out)
	if !rep.OK {
		for _, f := range rep.Failures {
			fmt.Fprintln(os.Stderr, "chaos: FAIL:", f)
		}
		return fmt.Errorf("seed %d: %d differential failure(s)", *seed, len(rep.Failures))
	}
	fmt.Println("chaos: soak run bit-identical to the undisturbed reference; all failovers accounted")
	return nil
}

// buildAnalytic mirrors cmd/ariadne: a program factory (each executor gets
// a fresh instance), the possibly-transformed graph, and analytic-specific
// options.
func buildAnalytic(name string, g *graph.Graph, supersteps int) (func() ariadne.Program, *graph.Graph, []ariadne.Option, error) {
	switch name {
	case "pagerank":
		return func() ariadne.Program { return &analytics.PageRank{Iterations: supersteps} }, g,
			[]ariadne.Option{ariadne.WithMaxSupersteps(supersteps + 1)}, nil
	case "sssp":
		return func() ariadne.Program { return &analytics.SSSP{Source: 0} }, g, nil, nil
	case "wcc":
		g = g.Undirected()
		return func() ariadne.Program { return analytics.WCC{} }, g, nil, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown analytic %q (want pagerank, sssp, or wcc)", name)
	}
}
