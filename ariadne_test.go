package ariadne_test

import (
	"errors"
	"math"
	"testing"

	"ariadne"
	"ariadne/internal/analytics"
	"ariadne/internal/capture"
	"ariadne/internal/driver"
	"ariadne/internal/engine"
	"ariadne/internal/gen"
	"ariadne/internal/graph"
	"ariadne/internal/provenance"
	"ariadne/internal/queries"
	"ariadne/internal/value"
)

func testGraph(t *testing.T, scale int, deg float64, seed int64) *ariadne.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(scale, deg, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunBaseline(t *testing.T) {
	g := testGraph(t, 8, 6, 1)
	res, err := ariadne.Run(g, &analytics.PageRank{}, ariadne.WithMaxSupersteps(21))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Supersteps != 21 {
		t.Errorf("supersteps = %d", res.Stats.Supersteps)
	}
	if res.Provenance != nil {
		t.Error("no capture requested, store should be nil")
	}
	if res.Duration <= 0 {
		t.Error("duration not measured")
	}
}

func TestOnlineMonitoringCleanRun(t *testing.T) {
	g := testGraph(t, 8, 6, 2)
	g.BuildInEdges()
	res, err := ariadne.Run(g, &analytics.PageRank{},
		ariadne.WithMaxSupersteps(21),
		ariadne.WithOnlineQuery(queries.PageRankCheck()))
	if err != nil {
		t.Fatal(err)
	}
	qr := res.Query("q4-pagerank-check")
	if qr == nil {
		t.Fatal("online query result missing")
	}
	// Clean PageRank sends only along real edges: no failures.
	if n := ariadne.Count(qr, "check_failed"); n != 0 {
		t.Errorf("clean run flagged %d failures: %v", n, ariadne.Tuples(qr, "check_failed")[:min(3, n)])
	}
}

// strayProg sends a message to a vertex that is not a neighbor, the bug
// paper Query 4 exists to catch (§6.2.1).
type strayProg struct {
	inner  ariadne.Program
	target ariadne.VertexID
}

func (s strayProg) InitialValue(g *ariadne.Graph, v ariadne.VertexID) ariadne.Value {
	return s.inner.InitialValue(g, v)
}

func (s strayProg) Compute(ctx *engine.Context, msgs []engine.IncomingMessage) error {
	if err := s.inner.Compute(ctx, msgs); err != nil {
		return err
	}
	if ctx.Superstep() == 1 && ctx.ID() == 0 {
		ctx.SendMessage(s.target, value.NewFloat(0.123))
	}
	return nil
}

func TestOnlineMonitoringCatchesStrayMessage(t *testing.T) {
	// Vertex `lonely` has no in-edges; vertex 0 messages it anyway.
	edges := []graph.Edge{{Src: 1, Dst: 0, Weight: 1}, {Src: 0, Dst: 1, Weight: 1}, {Src: 2, Dst: 0, Weight: 1}, {Src: 0, Dst: 2, Weight: 1}}
	g, err := graph.NewFromEdges(4, edges) // vertex 3 is isolated
	if err != nil {
		t.Fatal(err)
	}
	res, err := ariadne.Run(g, strayProg{inner: &analytics.PageRank{}, target: 3},
		ariadne.WithMaxSupersteps(10),
		ariadne.WithOnlineQuery(queries.PageRankCheck()))
	if err != nil {
		t.Fatal(err)
	}
	qr := res.Query("q4-pagerank-check")
	rows := ariadne.Tuples(qr, "check_failed")
	if len(rows) == 0 {
		t.Fatal("stray message not flagged")
	}
	// check_failed(X=3, Y=0, I=2): receiver 3, sender 0.
	if rows[0][0].Int() != 3 || rows[0][1].Int() != 0 {
		t.Errorf("culprit = %v", rows[0])
	}
}

func TestOnlineSSSPCorruptedInput(t *testing.T) {
	g := testGraph(t, 7, 5, 3)
	bad, err := gen.CorruptWeights(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithOnlineQuery(queries.MonotoneCheck()))
	if err != nil {
		t.Fatal(err)
	}
	if n := ariadne.Count(clean.Query("q5-monotone-check"), "check_failed"); n != 0 {
		t.Errorf("clean SSSP flagged %d failures", n)
	}
	corrupted, err := ariadne.Run(bad, &analytics.SSSP{Source: 0},
		ariadne.WithMaxSupersteps(12), // negative cycles would run long
		ariadne.WithOnlineQuery(queries.MonotoneCheck()))
	if err != nil {
		t.Fatal(err)
	}
	if n := ariadne.Count(corrupted.Query("q5-monotone-check"), "check_failed"); n == 0 {
		t.Error("corrupted SSSP not flagged")
	}
}

func TestSilentChangeQueryOnWCC(t *testing.T) {
	g := testGraph(t, 8, 4, 4).Undirected()
	res, err := ariadne.Run(g, analytics.WCC{},
		ariadne.WithOnlineQuery(queries.SilentChange()))
	if err != nil {
		t.Fatal(err)
	}
	if n := ariadne.Count(res.Query("q6-silent-change"), "problem"); n != 0 {
		t.Errorf("clean WCC flagged %d problems", n)
	}
}

func TestCaptureFullAndOfflineQuery(t *testing.T) {
	g := testGraph(t, 7, 5, 5)
	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	store := res.Provenance
	if store == nil || store.NumLayers() == 0 {
		t.Fatal("nothing captured")
	}
	if store.TotalBytes() <= g.MemSize() {
		t.Errorf("full provenance (%d B) should exceed input graph (%d B)", store.TotalBytes(), g.MemSize())
	}

	// Offline apt query, layered vs naive must agree.
	def := queries.Apt(0.1, nil)
	layered, err := ariadne.QueryOffline(def, store, g, ariadne.ModeLayered, 0)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := ariadne.QueryOffline(queries.Apt(0.1, nil), store, g, ariadne.ModeNaive, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"safe", "unsafe", "no_execute"} {
		l, n := layered.Relation(pred), naive.Relation(pred)
		if l.Len() != n.Len() {
			t.Errorf("%s: layered %d vs naive %d tuples", pred, l.Len(), n.Len())
			continue
		}
		for _, tup := range l.All() {
			if !n.Contains(tup) {
				t.Errorf("%s: layered tuple %v missing from naive", pred, tup)
			}
		}
	}
}

func TestOnlineAgreesWithOffline(t *testing.T) {
	// Theorem 5.4: online query result == offline query over captured
	// provenance, and the analytic result is unchanged by the query.
	g := testGraph(t, 7, 5, 6)
	def := queries.Apt(0.05, nil)

	base, err := ariadne.Run(g, &analytics.SSSP{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	online, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithOnlineQuery(queries.Apt(0.05, nil)),
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	// (i) analytic result unchanged.
	for v := range base.Values {
		if !base.Values[v].Equal(online.Values[v]) {
			t.Fatalf("query evaluation changed the analytic at vertex %d", v)
		}
	}
	// (ii) online result == offline layered result on the captured graph.
	offline, err := ariadne.QueryOffline(def, online.Provenance, g, ariadne.ModeLayered, 0)
	if err != nil {
		t.Fatal(err)
	}
	onres := online.Query("apt")
	for _, pred := range []string{"safe", "unsafe", "no_execute", "change"} {
		o, f := onres.Relation(pred), offline.Relation(pred)
		if o.Len() != f.Len() {
			t.Errorf("%s: online %d vs offline %d", pred, o.Len(), f.Len())
			continue
		}
		for _, tup := range o.All() {
			if !f.Contains(tup) {
				t.Errorf("%s: online tuple %v missing offline", pred, tup)
			}
		}
	}
}

func TestCustomCaptureSmaller(t *testing.T) {
	// Table 4: forward-lineage capture is a fraction of full capture.
	g := testGraph(t, 8, 6, 7)
	full, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	cust, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithCaptureQuery(queries.CaptureForwardLineage(0), ariadne.StoreConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if cust.Provenance.TotalBytes() >= full.Provenance.TotalBytes() {
		t.Errorf("custom capture %d B should be smaller than full %d B",
			cust.Provenance.TotalBytes(), full.Provenance.TotalBytes())
	}
	// The source's lineage should still reach most of the connected graph.
	if cust.Provenance.DistinctVertices() < g.NumVertices()/2 {
		t.Errorf("lineage covers only %d of %d vertices", cust.Provenance.DistinctVertices(), g.NumVertices())
	}
}

func TestBackwardLineageFullVsCustom(t *testing.T) {
	g := testGraph(t, 7, 5, 8)
	// Full capture + Query 10.
	full, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	// Pick a vertex active in the last superstep.
	lastLayer, err := full.Provenance.Layer(full.Provenance.NumLayers() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lastLayer.Records) == 0 {
		t.Fatal("no vertex active in last superstep")
	}
	target := lastLayer.Records[0].Vertex
	sigma := lastLayer.Superstep

	q10, err := ariadne.QueryOffline(queries.BackwardTrace(target, sigma), full.Provenance, g, ariadne.ModeLayered, 0)
	if err != nil {
		t.Fatal(err)
	}
	traceFull := q10.Relation("back_trace")
	if traceFull.Len() == 0 {
		t.Fatal("empty backward trace")
	}

	// Custom capture (Query 11) + Query 12.
	cust, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithCaptureQuery(queries.CaptureBackwardCustom(), ariadne.StoreConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if cust.Provenance.TotalBytes() >= full.Provenance.TotalBytes() {
		t.Error("Query 11 capture should be smaller than full capture")
	}
	q12, err := ariadne.QueryOffline(queries.BackwardTraceCustom(target, sigma), cust.Provenance, g, ariadne.ModeLayered, 0)
	if err != nil {
		t.Fatal(err)
	}
	traceCustom := q12.Relation("back_trace")
	// Paper: "the result of the query contains the exact same information".
	if traceFull.Len() != traceCustom.Len() {
		t.Errorf("trace sizes differ: full %d vs custom %d", traceFull.Len(), traceCustom.Len())
	}
	for _, tup := range traceFull.All() {
		if !traceCustom.Contains(tup) {
			t.Errorf("custom trace missing %v", tup)
		}
	}
	// Lineage ends at superstep 0.
	for _, tup := range ariadne.Tuples(q10, "back_lineage") {
		_ = tup // rows are (vertex, value at superstep 0)
	}
}

func TestBackwardQueryRejectedOnline(t *testing.T) {
	g := testGraph(t, 6, 4, 9)
	_, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithOnlineQuery(queries.BackwardTrace(0, 3)))
	if err == nil {
		t.Fatal("backward query must be rejected online")
	}
}

func TestALSOnlineQueries(t *testing.T) {
	r, err := gen.Bipartite(gen.DefaultBipartite(100, 20, 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	prog := &analytics.ALS{NumUsers: r.NumUsers, Features: 5, Seed: 2}
	res, err := ariadne.Run(r.Graph, prog,
		ariadne.WithMaxSupersteps(8),
		ariadne.WithOnlineQuery(queries.ALSRangeCheck()),
		ariadne.WithOnlineQuery(queries.ALSErrorIncrease(0.5)))
	if err != nil {
		t.Fatal(err)
	}
	// Ratings are in range, so input_failed must be empty; predictions may
	// occasionally leave [0,5] early on, that's what algo_failed reports.
	q7 := res.Query("q7-als-range")
	if n := ariadne.Count(q7, "input_failed"); n != 0 {
		t.Errorf("in-range ratings flagged: %d", n)
	}
	q8 := res.Query("q8-als-error-increase")
	if q8 == nil {
		t.Fatal("query 8 result missing")
	}
	// problem rows are (x, e1, e2, i) with e1 > e2 + eps; sanity-check shape.
	for _, row := range ariadne.Tuples(q8, "problem") {
		if len(row) != 4 {
			t.Fatalf("problem row arity %d", len(row))
		}
		if !(row[1].Float() > row[2].Float()+0.5) {
			t.Errorf("problem row %v violates its own condition", row)
		}
	}
}

func TestALSCaptureBlowup(t *testing.T) {
	// §6.1: full ALS provenance exceeds memory. A tight budget without a
	// spill directory must abort capture with ErrBudgetExceeded.
	r, err := gen.Bipartite(gen.DefaultBipartite(120, 25, 8, 11))
	if err != nil {
		t.Fatal(err)
	}
	prog := &analytics.ALS{NumUsers: r.NumUsers, Features: 10, Seed: 2}
	_, err = ariadne.Run(r.Graph, prog,
		ariadne.WithMaxSupersteps(8),
		ariadne.WithCapture(capture.FullPolicy(), ariadne.StoreConfig{MemoryBudget: 64 * 1024}))
	if !errors.Is(err, provenance.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	// With a spill directory the same run succeeds.
	res, err := ariadne.Run(r.Graph, prog,
		ariadne.WithMaxSupersteps(8),
		ariadne.WithCapture(capture.FullPolicy(), ariadne.StoreConfig{
			MemoryBudget: 2 << 20, SpillDir: t.TempDir(),
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Provenance.Close()
	if res.Provenance.SpilledLayers() == 0 {
		t.Error("expected spilled layers under a tight budget")
	}
	// Spilled layers still usable offline.
	qr, err := ariadne.QueryOffline(queries.ALSRangeCheck(), res.Provenance, r.Graph, ariadne.ModeLayered, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := ariadne.Count(qr, "input_failed"); n != 0 {
		t.Errorf("in-range ratings flagged offline: %d", n)
	}
}

func TestAptQueryGuidesOptimization(t *testing.T) {
	// §6.2.2 shape: PageRank and SSSP have safe vertices and no unsafe
	// ones; WCC's no-execute set is entirely unsafe.
	g := testGraph(t, 7, 6, 12)

	pr, err := ariadne.Run(g, &analytics.PageRank{}, ariadne.WithMaxSupersteps(21),
		ariadne.WithOnlineQuery(queries.Apt(0.01, nil)))
	if err != nil {
		t.Fatal(err)
	}
	prSafe := ariadne.Count(pr.Query("apt"), "safe")
	prUnsafe := ariadne.Count(pr.Query("apt"), "unsafe")
	if prSafe == 0 {
		t.Error("PageRank should have safe vertices at eps=0.01")
	}
	if prUnsafe > prSafe/10 {
		t.Errorf("PageRank unsafe=%d should be rare vs safe=%d", prUnsafe, prSafe)
	}

	// The paper's per-analytic contrast (§6.2.2): PageRank has a huge safe
	// set; WCC's is negligible, so the optimization is not worth pursuing
	// there. (At web scale the paper additionally finds WCC's skips
	// positively unsafe; our scaled graphs make them merely useless.)
	prExecutions := 0
	for _, a := range pr.Stats.ActiveVertices {
		prExecutions += a
	}
	if float64(prSafe)/float64(prExecutions) < 0.10 {
		t.Errorf("PageRank safe fraction %.2f too small", float64(prSafe)/float64(prExecutions))
	}
	wcc, err := ariadne.Run(g.Undirected(), analytics.WCC{},
		ariadne.WithOnlineQuery(queries.Apt(1, nil)))
	if err != nil {
		t.Fatal(err)
	}
	wccSafe := ariadne.Count(wcc.Query("apt"), "safe")
	wccExecutions := 0
	for _, a := range wcc.Stats.ActiveVertices {
		wccExecutions += a
	}
	wccFrac := float64(wccSafe) / float64(wccExecutions)
	prFrac := float64(prSafe) / float64(prExecutions)
	if wccFrac > 0.10 || wccFrac > prFrac/3 {
		t.Errorf("WCC safe fraction %.2f should be negligible vs PageRank's %.2f (safe=%d of %d executions)",
			wccFrac, prFrac, wccSafe, wccExecutions)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		def  ariadne.QueryDef
		want string
	}{
		{queries.Apt(0.1, nil), "forward"},
		{queries.PageRankCheck(), "local"},
		{queries.MonotoneCheck(), "local"},
		{queries.BackwardTrace(0, 5), "backward"},
		{queries.BackwardTraceCustom(0, 5), "backward"},
		{queries.CaptureForwardLineage(0), "forward"},
	}
	for _, c := range cases {
		got, vc, err := ariadne.Classify(c.def)
		if err != nil {
			t.Errorf("%s: %v", c.def.Name, err)
			continue
		}
		if got != c.want || !vc {
			t.Errorf("%s: class %q vc=%v, want %q vc=true", c.def.Name, got, vc, c.want)
		}
	}
}

func TestNaiveBudgetFails(t *testing.T) {
	g := testGraph(t, 8, 6, 13)
	res, err := ariadne.Run(g, &analytics.SSSP{Source: 0},
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = ariadne.QueryOffline(queries.Apt(0.1, nil), res.Provenance, g, ariadne.ModeNaive, 1024)
	if !errors.Is(err, driver.ErrNaiveBudget) {
		t.Fatalf("want ErrNaiveBudget, got %v", err)
	}
}

func TestRunOptionErrors(t *testing.T) {
	g := testGraph(t, 5, 3, 14)
	_, err := ariadne.Run(g, &analytics.PageRank{},
		ariadne.WithCapture(capture.FullPolicy(), ariadne.StoreConfig{}),
		ariadne.WithCaptureQuery(queries.CaptureFull(), ariadne.StoreConfig{}))
	if err == nil {
		t.Error("double capture should fail")
	}
}

func TestALSOptimizationInconclusive(t *testing.T) {
	// §6.2.2: for ALS the apt query returns too few vertices in either
	// table to justify the optimization.
	r, err := gen.Bipartite(gen.DefaultBipartite(120, 25, 6, 15))
	if err != nil {
		t.Fatal(err)
	}
	prog := &analytics.ALS{NumUsers: r.NumUsers, Features: 5, Seed: 4}
	res, err := ariadne.Run(r.Graph, prog,
		ariadne.WithMaxSupersteps(10),
		ariadne.WithOnlineQuery(queries.Apt(0.001, value.EuclideanDist)))
	if err != nil {
		t.Fatal(err)
	}
	apt := res.Query("apt")
	total := r.Graph.NumVertices() * res.Stats.Supersteps
	if got := ariadne.Count(apt, "safe"); got > total/10 {
		t.Errorf("ALS safe=%d should be scarce", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRelativeErrorHelpers(t *testing.T) {
	if math.Abs(1.0) != 1.0 {
		t.Skip("sanity")
	}
}
